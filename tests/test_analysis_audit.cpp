/// \file test_analysis_audit.cpp
/// The footprint soundness auditor (analysis/soundness.hpp) and the
/// strict integrity checker.  The auditor *logic* is exercised in every
/// build with hand-built shadow sets and journals; the accessor *hooks*
/// and the corruption fixtures only exist in audit builds
/// (-DBOOLGEBRA_AUDIT=ON), so those sections are compile-gated.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aig/aig.hpp"
#include "aig/audit.hpp"
#include "aig/footprint.hpp"
#include "analysis/soundness.hpp"
#include "circuits/registry.hpp"
#include "cut/cut_enum.hpp"
#include "opt/objective.hpp"
#include "opt/orchestrate.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::ContractViolation;
using bg::analysis::WriteAudit;
using bg::analysis::verify_read_soundness;

// Normal builds must compile the hooks away entirely; the audit job
// compiles this same file with the hooks live.  Pinning enabled() at
// compile time guarantees a stray always-on hook cannot ship silently.
#ifdef BOOLGEBRA_AUDIT
static_assert(audit::enabled(), "audit build must report enabled()");
#else
static_assert(!audit::enabled(),
              "normal builds must compile audit hooks to nothing");
#endif

ReadFootprint declared_with(std::initializer_list<std::uint32_t> entries) {
    ReadFootprint fp;
    fp.vars.assign(entries.begin(), entries.end());
    return fp;
}

// ---------------------------------------------------------------------------
// Auditor logic, every build: hand-built shadow sets vs declarations.
// ---------------------------------------------------------------------------

TEST(ReadSoundness, PassesWhenShadowIsSubsetOfDeclared) {
    const auto fp = declared_with({fp_encode(3, Read::Struct),
                                   fp_encode(3, Read::Ref),
                                   fp_encode(7, Read::Fanout)});
    audit::ShadowSet shadow;
    shadow.entries = {fp_encode(3, Read::Struct), fp_encode(3, Read::Struct),
                      fp_encode(7, Read::Fanout)};
    EXPECT_NO_THROW(verify_read_soundness(fp, shadow, 3, "test-op"));
}

TEST(ReadSoundness, FlagsUndeclaredRead) {
    const auto fp = declared_with({fp_encode(3, Read::Struct)});
    audit::ShadowSet shadow;
    shadow.entries = {fp_encode(3, Read::Struct),
                      fp_encode(9, Read::Struct)};  // 9 never declared
    EXPECT_THROW(verify_read_soundness(fp, shadow, 3, "test-op"),
                 ContractViolation);
}

TEST(ReadSoundness, FlagsRightVarWrongClass) {
    // Declaring var 3 Struct does not license reading var 3's ref count.
    const auto fp = declared_with({fp_encode(3, Read::Struct)});
    audit::ShadowSet shadow;
    shadow.entries = {fp_encode(3, Read::Ref)};
    EXPECT_THROW(verify_read_soundness(fp, shadow, 3, "test-op"),
                 ContractViolation);
}

TEST(ReadSoundness, FlagsPoArrayRead) {
    const auto fp = declared_with({fp_encode(3, Read::Struct)});
    audit::ShadowSet shadow;
    shadow.po_read = true;
    EXPECT_THROW(verify_read_soundness(fp, shadow, 3, "test-op"),
                 ContractViolation);
}

TEST(ReadSoundness, OverflowedFootprintIsExemptBecauseNeverConsumed) {
    ReadFootprint fp;
    fp.overflow = true;  // orchestrator re-checks such candidates inline
    audit::ShadowSet shadow;
    shadow.entries = {fp_encode(99, Read::Fanout)};
    EXPECT_NO_THROW(verify_read_soundness(fp, shadow, 3, "test-op"));
}

TEST(ShadowScope, RecordsManualReadsAndRestoresOnExit) {
    // The recording machinery itself works in every build; only the
    // accessor hooks are compile-gated.
    audit::ShadowSet shadow;
    EXPECT_FALSE(audit::shadow_active());
    {
        const audit::ShadowScope scope(shadow);
        EXPECT_TRUE(audit::shadow_active());
        audit::shadow_read(5, Read::Fanout);
    }
    EXPECT_FALSE(audit::shadow_active());
    audit::shadow_read(6, Read::Struct);  // no scope: dropped
    ASSERT_EQ(shadow.entries.size(), 1u);
    EXPECT_EQ(shadow.entries[0], fp_encode(5, Read::Fanout));
}

// ---------------------------------------------------------------------------
// Write-completeness audit, every build: real mutations, real journal.
// ---------------------------------------------------------------------------

TEST(WriteCompleteness, CleanWhenNothingChanged) {
    Aig g = bg::test::random_aig(4, 20, 2, 7);
    WriteAudit audit;
    audit.capture(g);
    const std::vector<Var> journal;
    EXPECT_NO_THROW(audit.verify(g, journal, "no-op"));
}

TEST(WriteCompleteness, JournalCoversRealMutations) {
    Aig g = bg::test::random_aig(4, 20, 2, 7);
    WriteAudit audit;
    audit.capture(g);

    std::vector<Var> journal;
    g.set_change_log(&journal);
    const Lit a = make_lit(g.pi(0));
    const Lit b = lit_not(make_lit(g.pi(3)));
    const Lit fresh = g.and_(g.and_(a, b), make_lit(g.pi(2)));
    g.add_po(fresh);
    g.set_change_log(nullptr);

    EXPECT_FALSE(journal.empty());
    EXPECT_NO_THROW(audit.verify(g, journal, "and_ + add_po"));
}

TEST(WriteCompleteness, FlagsMutationScrubbedFromJournal) {
    Aig g = bg::test::random_aig(4, 20, 2, 7);
    WriteAudit audit;
    audit.capture(g);

    std::vector<Var> journal;
    g.set_change_log(&journal);
    const Lit fresh = g.and_(
        g.and_(make_lit(g.pi(0)), lit_not(make_lit(g.pi(3)))),
        make_lit(g.pi(2)));
    g.add_po(fresh);
    g.set_change_log(nullptr);

    // Scrub every entry for one mutated var: the audit must notice that
    // var's state diverged from the snapshot with no journal coverage.
    const Var scrubbed = lit_var(fresh);
    std::erase_if(journal, [&](Var e) { return fp_entry_var(e) == scrubbed; });
    EXPECT_THROW(audit.verify(g, journal, "scrubbed journal"),
                 ContractViolation);
}

// ---------------------------------------------------------------------------
// Strict integrity, every build: positive runs over real designs.
// ---------------------------------------------------------------------------

TEST(StrictIntegrity, CleanOnRegistryDesigns) {
    for (const auto& name : bg::circuits::benchmark_names()) {
        SCOPED_TRACE(name);
        const Aig g = bg::circuits::make_benchmark_scaled(name, 0.3);
        EXPECT_NO_THROW(g.check_integrity(Aig::CheckLevel::Strict));
    }
}

TEST(StrictIntegrity, CleanAfterOptimizationPass) {
    Aig g = bg::test::redundant_aig(6, 60, 3, 11);
    bg::opt::DecisionVector d(g.num_slots(), bg::opt::OpKind::None);
    for (const Var v : g.topo_ands()) {
        d[v] = bg::opt::op_from_index(static_cast<int>(v % 3));
    }
    bg::opt::orchestrate(g, d);
    EXPECT_NO_THROW(g.check_integrity(Aig::CheckLevel::Strict));
}

// ---------------------------------------------------------------------------
// Audit builds only: live accessor hooks, corruption fixtures, and the
// end-to-end audited orchestrator.
// ---------------------------------------------------------------------------
#ifdef BOOLGEBRA_AUDIT

TEST(AuditHooks, AccessorsReportToActiveShadow) {
    Aig g = bg::test::random_aig(4, 10, 1, 3);
    const Var v = lit_var(g.pos()[0]);
    ASSERT_TRUE(g.is_and(v));

    audit::ShadowSet shadow;
    {
        const audit::ShadowScope scope(shadow);
        (void)g.is_and(v);
        (void)g.ref_count(v);
        (void)g.fanouts(v);
        (void)g.fanin_refs(v);
    }
    const auto has = [&](Read k) {
        return std::find(shadow.entries.begin(), shadow.entries.end(),
                         fp_encode(v, k)) != shadow.entries.end();
    };
    EXPECT_TRUE(has(Read::Struct));
    EXPECT_TRUE(has(Read::Ref));
    EXPECT_TRUE(has(Read::Fanout));
    EXPECT_FALSE(shadow.po_read);

    shadow.clear();
    {
        const audit::ShadowScope scope(shadow);
        (void)g.pos();
    }
    EXPECT_TRUE(shadow.po_read);
}

TEST(AuditHooks, UnderDeclaredCheckIsCaught) {
    // A deliberately broken "check": reads a node's ref count under the
    // recorder without ever declaring it.  This is the seeded fixture the
    // acceptance criteria require the auditor to flag.
    Aig g = bg::test::random_aig(4, 10, 1, 3);
    const Var v = lit_var(g.pos()[0]);

    ReadFootprint fp;
    audit::ShadowSet shadow;
    {
        const FootprintScope declare(fp);
        const audit::ShadowScope observe(shadow);
        fp_touch(v, Read::Struct);
        (void)g.is_and(v);      // declared: fine
        (void)g.ref_count(v);   // Ref-class read, never declared
    }
    EXPECT_THROW(verify_read_soundness(fp, shadow, v, "seeded-broken-check"),
                 ContractViolation);
}

TEST(AuditHooks, WellDeclaredCutEnumerationIsAuditClean) {
    Aig g = bg::test::redundant_aig(6, 40, 2, 5);
    for (const Var v : g.topo_ands()) {
        ReadFootprint fp;
        audit::ShadowSet shadow;
        {
            const FootprintScope declare(fp);
            const audit::ShadowScope observe(shadow);
            (void)bg::cut::reconv_cut(g, v, 8);
        }
        EXPECT_NO_THROW(verify_read_soundness(fp, shadow, v, "reconv_cut"));
    }
}

TEST(AuditCorruption, UnjournaledRefCountBumpCaught) {
    Aig g = bg::test::random_aig(4, 20, 2, 7);
    const Var v = lit_var(g.pos()[0]);
    g.audit_corrupt_for_test(Aig::Corrupt::RefCount, v);
    EXPECT_THROW(g.check_integrity(), ContractViolation);
}

TEST(AuditCorruption, DuplicatedFanoutCaughtOnlyByStrict) {
    Aig g = bg::test::random_aig(4, 20, 2, 7);
    // Pick an AND with at least one fanout edge.
    Var victim = null_var;
    for (const Var v : g.topo_ands()) {
        if (!g.fanouts(v).empty()) {
            victim = v;
            break;
        }
    }
    ASSERT_NE(victim, null_var);
    g.audit_corrupt_for_test(Aig::Corrupt::FanoutDup, victim);
    EXPECT_THROW(g.check_integrity(Aig::CheckLevel::Strict),
                 ContractViolation);
}

TEST(AuditCorruption, DroppedStrashEntryCaught) {
    Aig g = bg::test::random_aig(4, 20, 2, 7);
    const Var v = lit_var(g.pos()[0]);
    ASSERT_TRUE(g.is_and(v));
    g.audit_corrupt_for_test(Aig::Corrupt::StrashDrop, v);
    EXPECT_THROW(g.check_integrity(Aig::CheckLevel::Strict),
                 ContractViolation);
}

TEST(AuditEndToEnd, ParallelOrchestratorRunsAuditClean) {
    // The whole point of the audit build: a full partition / speculate /
    // ordered-commit pass over real designs with every speculation's
    // shadow set checked against its declared footprint and every commit
    // checked against the mutation journal.  Any missing fp_touch or
    // unjournaled write in the opt/cut layers throws here.
    for (const auto& name : bg::circuits::benchmark_names()) {
        SCOPED_TRACE(name);
        Aig g = bg::circuits::make_benchmark_scaled(name, 0.25);
        bg::opt::DecisionVector d(g.num_slots(), bg::opt::OpKind::None);
        for (const Var v : g.topo_ands()) {
            d[v] = bg::opt::op_from_index(static_cast<int>(v % 3));
        }
        bg::ThreadPool pool(2);
        bg::opt::IntraParallel intra;
        intra.pool = &pool;
        EXPECT_NO_THROW(bg::opt::orchestrate_parallel(
            g, d, {}, bg::opt::size_objective(), intra));
        EXPECT_NO_THROW(g.check_integrity(Aig::CheckLevel::Strict));
    }
}

#endif  // BOOLGEBRA_AUDIT

}  // namespace
