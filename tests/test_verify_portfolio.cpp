/// \file test_verify_portfolio.cpp
/// The portfolio verification gate: engine-agreement matrix across
/// sim/BDD/SAT/portfolio, degenerate interfaces (zero POs, constant POs,
/// mismatched PI/PO preconditions), counterexample round-trips, the
/// spurious-SAT-counterexample no-throw contract, exact simulation budget
/// accounting, the verdict cache, and verification wired through
/// run_flow / FlowEngine / FlowService.  Runs under the TSan CI job — the
/// engine race shares one cancel flag and a caller-participating pool.

#include <gtest/gtest.h>

#include <atomic>

#include "aig/cec.hpp"
#include "aig/simulation.hpp"
#include "bdd/cec_bdd.hpp"
#include "circuits/registry.hpp"
#include "core/flow_engine.hpp"
#include "core/flow_service.hpp"
#include "opt/standalone.hpp"
#include "sat/cec_sat.hpp"
#include "test_helpers.hpp"
#include "verify/portfolio.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::verify::Engine;
using bg::verify::PortfolioCec;
using bg::verify::PortfolioOptions;

/// Rebuild `src` with the first PO complemented: a definitively
/// inequivalent twin (single-gate mutation at the output boundary).
Aig flip_first_po(const Aig& source) {
    const Aig src = source.compact();
    Aig out;
    std::vector<Lit> translate(src.num_slots(), 0);
    translate[0] = lit_false;
    for (std::size_t i = 0; i < src.num_pis(); ++i) {
        translate[src.pi(i)] = out.add_pi();
    }
    for (const Var v : src.topo_ands()) {
        const Lit f0 = src.fanin0(v);
        const Lit f1 = src.fanin1(v);
        translate[v] = out.and_(
            lit_not_cond(translate[lit_var(f0)], lit_is_compl(f0)),
            lit_not_cond(translate[lit_var(f1)], lit_is_compl(f1)));
    }
    for (std::size_t i = 0; i < src.num_pos(); ++i) {
        Lit po = lit_not_cond(translate[lit_var(src.po(i))],
                              lit_is_compl(src.po(i)));
        if (i == 0) {
            po = lit_not(po);
        }
        out.add_po(po);
    }
    return out;
}

/// Simulate one PI assignment on both designs; true iff some PO differs.
bool cex_distinguishes(const Aig& a, const Aig& b,
                       const std::vector<bool>& cex) {
    if (cex.size() != a.num_pis()) {
        return false;
    }
    SimVectors pats(a.num_pis());
    for (std::size_t i = 0; i < a.num_pis(); ++i) {
        pats[i].assign(1, cex[i] ? 1ULL : 0ULL);
    }
    const auto pa = po_signatures(a, simulate(a, pats));
    const auto pb = po_signatures(b, simulate(b, pats));
    for (std::size_t i = 0; i < pa.size(); ++i) {
        if ((pa[i][0] & 1ULL) != (pb[i][0] & 1ULL)) {
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// Engine-agreement matrix

TEST(PortfolioCecTest, EngineMatrixAgreesOnEquivalentPairs) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const Aig original = bg::test::redundant_aig(8, 28, 3, seed);
        Aig optimized = original;
        (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Rewrite);

        // Exhaustive simulation (8 PIs), BDD and SAT must all prove it.
        EXPECT_EQ(check_equivalence(original, optimized),
                  CecVerdict::Equivalent)
            << "sim, seed " << seed;
        EXPECT_EQ(bg::bdd::check_equivalence_bdd(original, optimized),
                  CecVerdict::Equivalent)
            << "bdd, seed " << seed;
        EXPECT_EQ(bg::sat::check_equivalence_sat(original, optimized),
                  CecVerdict::Equivalent)
            << "sat, seed " << seed;

        PortfolioCec prover;
        const auto report = prover.check(original, optimized);
        EXPECT_EQ(report.verdict, CecVerdict::Equivalent) << "seed " << seed;
        EXPECT_NE(report.engine, Engine::None);
    }
}

TEST(PortfolioCecTest, EngineMatrixAgreesOnMutatedPairs) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const Aig g = bg::test::redundant_aig(8, 28, 3, seed).compact();
        const Aig bad = flip_first_po(g);

        EXPECT_EQ(check_equivalence(g, bad), CecVerdict::NotEquivalent)
            << "sim, seed " << seed;
        EXPECT_EQ(bg::bdd::check_equivalence_bdd(g, bad),
                  CecVerdict::NotEquivalent)
            << "bdd, seed " << seed;
        EXPECT_EQ(bg::sat::check_equivalence_sat(g, bad),
                  CecVerdict::NotEquivalent)
            << "sat, seed " << seed;

        PortfolioCec prover;
        const auto report = prover.check(g, bad);
        EXPECT_EQ(report.verdict, CecVerdict::NotEquivalent)
            << "seed " << seed;
    }
}

TEST(PortfolioCecTest, WidePiDesignProvenByRace) {
    // Past the exhaustive bound: only BDD or SAT can prove; the portfolio
    // must return a definitive verdict either way.
    const Aig original = bg::circuits::make_benchmark_scaled("b07", 0.5);
    ASSERT_GT(original.num_pis(), 14u);
    Aig optimized = original;
    (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Rewrite);
    (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Resub);

    PortfolioCec prover;
    const auto report = prover.check(original, optimized);
    EXPECT_EQ(report.verdict, CecVerdict::Equivalent);
    EXPECT_TRUE(report.engine == Engine::Bdd || report.engine == Engine::Sat)
        << "proof must come from a proving engine, got "
        << bg::verify::to_string(report.engine);
}

// ---------------------------------------------------------------------
// Degenerate interfaces

TEST(PortfolioCecTest, ZeroPoDesignsAreTriviallyEquivalent) {
    Aig a;
    a.add_pis(3);
    Aig b;
    b.add_pis(3);
    b.and_(make_lit(b.pi(0)), make_lit(b.pi(1)));  // internal node, never observed

    EXPECT_EQ(bg::sat::check_equivalence_sat(a, b), CecVerdict::Equivalent);
    EXPECT_EQ(bg::bdd::check_equivalence_bdd(a, b), CecVerdict::Equivalent);
    PortfolioCec prover;
    EXPECT_EQ(prover.check(a, b).verdict, CecVerdict::Equivalent);
}

TEST(PortfolioCecTest, ConstantPos) {
    Aig a;
    {
        const Lit x = a.add_pi();
        a.add_po(a.and_(x, lit_not(x)));  // structurally const-false
        a.add_po(lit_true);
    }
    Aig b;
    {
        b.add_pi();
        b.add_po(lit_false);
        b.add_po(lit_true);
    }
    EXPECT_EQ(check_equivalence(a, b), CecVerdict::Equivalent);
    EXPECT_EQ(bg::bdd::check_equivalence_bdd(a, b), CecVerdict::Equivalent);
    EXPECT_EQ(bg::sat::check_equivalence_sat(a, b), CecVerdict::Equivalent);
    PortfolioCec prover;
    EXPECT_EQ(prover.check(a, b).verdict, CecVerdict::Equivalent);

    Aig c;
    {
        c.add_pi();
        c.add_po(lit_true);  // differs on PO 0 everywhere
        c.add_po(lit_true);
    }
    const auto report = prover.check(a, c);
    EXPECT_EQ(report.verdict, CecVerdict::NotEquivalent);
}

TEST(PortfolioCecTest, InterfaceMismatchThrows) {
    Aig a;
    a.add_pi();
    a.add_po(make_lit(a.pi(0)));
    Aig b;
    b.add_pis(2);
    b.add_po(make_lit(b.pi(0)));
    PortfolioCec prover;
    EXPECT_THROW((void)prover.check(a, b), bg::ContractViolation);

    Aig c;  // same PIs, different PO count
    c.add_pi();
    EXPECT_THROW((void)prover.check(a, c), bg::ContractViolation);
}

// ---------------------------------------------------------------------
// Counterexamples

TEST(PortfolioCecTest, CounterexampleRoundTrips) {
    // Needle in 2^20: random simulation essentially never finds the
    // single differing minterm, so the witness must come from a
    // solver-grade engine (SAT model or BDD satisfying path).
    const unsigned n = 20;
    Aig g;
    g.add_po(g.and_reduce(g.add_pis(n)));
    Aig h;
    h.add_pis(n);
    h.add_po(lit_false);

    PortfolioCec prover;
    const auto report = prover.check(g, h);
    ASSERT_EQ(report.verdict, CecVerdict::NotEquivalent);
    ASSERT_EQ(report.counterexample.size(), g.num_pis());
    EXPECT_TRUE(cex_distinguishes(g, h, report.counterexample))
        << "reported counterexample must actually distinguish the designs";
}

TEST(SatCecFull, CounterexampleIsSimulationValidated) {
    const Aig g = bg::test::redundant_aig(9, 24, 2, 5).compact();
    const Aig bad = flip_first_po(g);
    const auto res = bg::sat::check_equivalence_sat_full(g, bad);
    ASSERT_EQ(res.verdict, CecVerdict::NotEquivalent);
    EXPECT_TRUE(cex_distinguishes(g, bad, res.counterexample));
    EXPECT_GE(res.stats.cex_found, 1u);
    EXPECT_EQ(res.stats.spurious_cex, 0u);
}

TEST(SatCecFull, IncrementalSolvesEveryOutput) {
    const Aig original = bg::circuits::make_benchmark_scaled("b09", 0.5);
    Aig optimized = original;
    (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Rewrite);
    const auto res =
        bg::sat::check_equivalence_sat_full(original, optimized);
    EXPECT_EQ(res.verdict, CecVerdict::Equivalent);
    EXPECT_EQ(res.stats.outputs_total, original.num_pos());
    EXPECT_EQ(res.stats.outputs_proven, original.num_pos());
}

TEST(SatCecFull, SpuriousCounterexamplePathNeverThrows) {
    // Satellite-1 regression: feed the verdict path counterexamples a
    // (hypothetically buggy) solver could emit.  It must classify, never
    // throw — for equivalent designs every pattern is non-differing, i.e.
    // guaranteed-spurious.
    Aig g;
    {
        const Lit a = g.add_pi();
        const Lit b = g.add_pi();
        g.add_po(lit_not(g.and_(a, b)));
    }
    Aig h;
    {
        const Lit a = h.add_pi();
        const Lit b = h.add_pi();
        h.add_po(h.or_(lit_not(a), lit_not(b)));
    }
    for (const std::vector<bool> cex :
         {std::vector<bool>{false, false}, std::vector<bool>{true, false},
          std::vector<bool>{false, true}, std::vector<bool>{true, true}}) {
        EXPECT_NO_THROW({
            EXPECT_EQ(bg::sat::resolve_sat_counterexample(g, h, cex),
                      CecVerdict::ProbablyEquivalent);
        });
    }
    // Malformed widths are a solver-bug symptom too: classified, no throw.
    EXPECT_NO_THROW({
        EXPECT_EQ(bg::sat::resolve_sat_counterexample(
                      g, h, std::vector<bool>{true}),
                  CecVerdict::ProbablyEquivalent);
    });
    EXPECT_NO_THROW((void)bg::sat::resolve_sat_counterexample(g, h, {}));

    // And a real counterexample still refutes through the same path.
    Aig k;
    {
        const Lit a = k.add_pi();
        const Lit b = k.add_pi();
        k.add_po(k.and_(a, b));
    }
    EXPECT_EQ(bg::sat::resolve_sat_counterexample(
                  g, k, std::vector<bool>{true, true}),
              CecVerdict::NotEquivalent);
}

// ---------------------------------------------------------------------
// Budgets, cancel, accounting

TEST(SimCec, RandomBudgetHonoredExactly) {
    // Satellite-2 regression: 7 words must simulate exactly 7 (the old
    // chunking simulated 4), and a budget of 2 must not over-run to 4.
    Aig g;
    g.add_po(g.and_reduce(g.add_pis(20)));
    const Aig h = g;
    CecOptions opts;
    opts.exhaustive_pi_limit = 0;  // force the random path
    for (const std::size_t budget : {std::size_t{1}, std::size_t{2},
                                     std::size_t{7}, std::size_t{64}}) {
        opts.random_words = budget;
        const auto res = check_equivalence_full(g, h, opts);
        EXPECT_EQ(res.verdict, CecVerdict::ProbablyEquivalent);
        EXPECT_EQ(res.words_simulated, budget) << "budget " << budget;
    }
}

TEST(SimCec, PreSetCancelDegradesWithoutSimulating) {
    Aig g;
    g.add_po(g.and_reduce(g.add_pis(20)));
    const Aig bad = flip_first_po(g);
    std::atomic<bool> cancel{true};
    CecOptions opts;
    opts.exhaustive_pi_limit = 0;
    opts.cancel = &cancel;
    const auto res = check_equivalence_full(g, bad, opts);
    EXPECT_EQ(res.verdict, CecVerdict::ProbablyEquivalent);
    EXPECT_EQ(res.words_simulated, 0u);
}

TEST(SatCecTest, PreSetCancelDegrades) {
    const Aig a = bg::circuits::make_benchmark_scaled("b09", 0.4);
    Aig b = a;
    (void)bg::opt::standalone_pass(b, bg::opt::OpKind::Rewrite);
    std::atomic<bool> cancel{true};
    bg::sat::SatCecOptions opts;
    opts.cancel = &cancel;
    EXPECT_EQ(bg::sat::check_equivalence_sat(a, b, opts),
              CecVerdict::ProbablyEquivalent);
}

TEST(BddCecTest, PreSetCancelDegrades) {
    const Aig a = bg::circuits::make_benchmark_scaled("b09", 0.4);
    Aig b = a;
    (void)bg::opt::standalone_pass(b, bg::opt::OpKind::Rewrite);
    std::atomic<bool> cancel{true};
    bg::bdd::BddCecOptions opts;
    opts.cancel = &cancel;
    EXPECT_EQ(bg::bdd::check_equivalence_bdd(a, b, opts),
              CecVerdict::ProbablyEquivalent);
}

TEST(PortfolioCecTest, AllEnginesExhaustedDegradesHonestly) {
    // Starve every engine: tiny budgets on a pair no engine can decide
    // that cheaply.  The portfolio must degrade, not guess.
    const Aig a = bg::circuits::make_benchmark_scaled("b11", 0.5);
    Aig b = a;
    (void)bg::opt::standalone_pass(b, bg::opt::OpKind::Rewrite);
    PortfolioOptions opts;
    opts.sim.random_words = 1;
    opts.sim.exhaustive_pi_limit = 0;
    opts.bdd.node_limit = 8;
    opts.sat.conflict_budget = 0;
    const auto report = PortfolioCec(opts).check(a, b);
    EXPECT_EQ(report.verdict, CecVerdict::ProbablyEquivalent);
    EXPECT_EQ(report.engine, Engine::None);
}

// ---------------------------------------------------------------------
// Structural fingerprint + verdict cache

TEST(StructuralFingerprint, StableAcrossCopiesSensitiveToStructure) {
    const Aig g = bg::test::redundant_aig(8, 25, 2, 3).compact();
    const Aig copy = g;
    EXPECT_EQ(structural_fingerprint(g), structural_fingerprint(copy));
    // Note: compact() may renumber nodes, and the fingerprint is
    // deliberately order-sensitive — the verdict cache only relies on
    // determinism for identically-constructed graphs.

    const Aig flipped = flip_first_po(g);
    EXPECT_NE(structural_fingerprint(g), structural_fingerprint(flipped));

    Aig rewritten = g;
    (void)bg::opt::standalone_pass(rewritten, bg::opt::OpKind::Rewrite);
    EXPECT_NE(structural_fingerprint(g),
              structural_fingerprint(rewritten.compact()));
}

TEST(PortfolioCecTest, VerdictCacheServesRepeats) {
    const Aig original = bg::circuits::make_benchmark_scaled("b08", 0.5);
    Aig optimized = original;
    (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Rewrite);

    PortfolioCec prover;
    const auto first = prover.check(original, optimized);
    EXPECT_EQ(first.verdict, CecVerdict::Equivalent);
    EXPECT_FALSE(first.from_cache);
    EXPECT_EQ(prover.cache_size(), 1u);

    const auto second = prover.check(original, optimized);
    EXPECT_EQ(second.verdict, CecVerdict::Equivalent);
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(second.engine, Engine::Cache);

    // Swapped operands hit the same entry (equivalence is symmetric).
    const auto swapped = prover.check(optimized, original);
    EXPECT_TRUE(swapped.from_cache);
    EXPECT_EQ(prover.cache_hits(), 2u);
    EXPECT_EQ(prover.cache_lookups(), 3u);
}

TEST(PortfolioCecTest, CacheDisabledNeverServesRepeats) {
    const Aig g = bg::test::redundant_aig(8, 20, 2, 9);
    PortfolioOptions opts;
    opts.use_cache = false;
    PortfolioCec prover(opts);
    (void)prover.check(g, g);
    const auto again = prover.check(g, g);
    EXPECT_FALSE(again.from_cache);
    EXPECT_EQ(prover.cache_lookups(), 0u);
}

TEST(PortfolioCecTest, RefutedCacheKeepsCounterexample) {
    const Aig g = bg::test::redundant_aig(8, 22, 2, 11).compact();
    const Aig bad = flip_first_po(g);
    PortfolioCec prover;
    const auto first = prover.check(g, bad);
    ASSERT_EQ(first.verdict, CecVerdict::NotEquivalent);
    const auto second = prover.check(g, bad);
    ASSERT_TRUE(second.from_cache);
    EXPECT_EQ(second.verdict, CecVerdict::NotEquivalent);
    EXPECT_EQ(second.counterexample, first.counterexample);
}

// ---------------------------------------------------------------------
// Counterexample-guided simulation (cross-job cex pool)

TEST(SimCec, SeedPatternsFlipVerdictBeforeRandomBudget) {
    // 20-PI needle: only the all-ones assignment distinguishes the pair,
    // which a small random budget essentially never finds.  Seeding that
    // assignment must flip the verdict before any random word is spent;
    // wrong-width seeds must be skipped, not simulated.
    Aig g;
    g.add_po(g.and_reduce(g.add_pis(20)));
    Aig h;
    h.add_pis(20);
    h.add_po(lit_false);

    CecOptions opts;
    opts.exhaustive_pi_limit = 0;  // force the sampling path
    opts.random_words = 2;
    const auto blind = check_equivalence_full(g, h, opts);
    EXPECT_EQ(blind.verdict, CecVerdict::ProbablyEquivalent);
    EXPECT_EQ(blind.words_simulated, 2u);

    const std::vector<std::vector<bool>> seeds = {
        std::vector<bool>(19, true),   // wrong width: skipped
        std::vector<bool>(20, false),  // agreeing assignment
        std::vector<bool>(20, true),   // the needle
    };
    opts.seed_patterns = &seeds;
    const auto seeded = check_equivalence_full(g, h, opts);
    ASSERT_EQ(seeded.verdict, CecVerdict::NotEquivalent);
    EXPECT_EQ(seeded.counterexample, std::vector<bool>(20, true));
    // One packed seed word refuted the pair; the random budget was never
    // touched.
    EXPECT_EQ(seeded.words_simulated, 1u);
}

TEST(SimCec, SeedPatternsLeaveExhaustivePathAlone) {
    // Below the exhaustive bound the check is already exact; seeds must
    // not perturb it (or its zero word accounting).
    Aig g;
    g.add_po(g.and_reduce(g.add_pis(4)));
    Aig h;
    h.add_pis(4);
    h.add_po(lit_false);
    const std::vector<std::vector<bool>> seeds = {
        std::vector<bool>(4, false)};
    CecOptions opts;
    opts.seed_patterns = &seeds;
    const auto res = check_equivalence_full(g, h, opts);
    EXPECT_EQ(res.verdict, CecVerdict::NotEquivalent);
    EXPECT_EQ(res.counterexample, std::vector<bool>(4, true));
    EXPECT_EQ(res.words_simulated, 0u);
}

TEST(PortfolioCecTest, PooledCounterexampleFlipsLaterSimVerdict) {
    // Job 1: a 20-PI needle pair whose refutation needs a solver-grade
    // engine (the sim engine is starved to one random word) — the witness
    // lands in the cross-job pool.  Job 2: a structurally different pair
    // computing the same functions, so its fingerprints miss the verdict
    // cache; the sequential portfolio runs simulation first, which now
    // refutes immediately from the pooled seed — cached cex flips the
    // later sim verdict from Unknown to NotEquivalent.
    Aig g1;
    g1.add_po(g1.and_reduce(g1.add_pis(20)));
    Aig h1;
    h1.add_pis(20);
    h1.add_po(lit_false);

    PortfolioOptions opts;
    opts.sim.exhaustive_pi_limit = 0;
    opts.sim.random_words = 1;
    PortfolioCec prover(opts);  // no pool: engines run sim -> BDD -> SAT

    const auto first = prover.check(g1, h1);
    ASSERT_EQ(first.verdict, CecVerdict::NotEquivalent);
    EXPECT_NE(first.engine, Engine::Simulation)
        << "starved simulation must not find the needle on its own";
    const auto pooled = prover.seed_patterns(20);
    ASSERT_EQ(pooled.size(), 1u);
    EXPECT_EQ(pooled[0], std::vector<bool>(20, true));

    // Same functions, different structure: the AND chain folds over the
    // reversed PI list, so every internal node (and both fingerprints as
    // a pair) differs from job 1.
    Aig g2;
    {
        const auto pis = g2.add_pis(20);
        Lit acc = pis[19];
        for (int i = 18; i >= 0; --i) {
            acc = g2.and_(acc, pis[static_cast<std::size_t>(i)]);
        }
        g2.add_po(acc);
    }
    Aig h2;
    h2.add_pis(20);
    h2.add_po(lit_false);
    ASSERT_NE(structural_fingerprint(g2), structural_fingerprint(g1));

    const auto second = prover.check(g2, h2);
    EXPECT_FALSE(second.from_cache);
    ASSERT_EQ(second.verdict, CecVerdict::NotEquivalent);
    EXPECT_EQ(second.engine, Engine::Simulation)
        << "the pooled seed must refute before BDD/SAT even run";
    EXPECT_TRUE(cex_distinguishes(g2, h2, second.counterexample));

    // The recurring witness deduplicates instead of growing the pool.
    EXPECT_EQ(prover.seed_patterns(20).size(), 1u);

    // Cache-served refutations keep feeding the pool path (no growth
    // here either — same witness again).
    const auto replay = prover.check(g1, h1);
    EXPECT_TRUE(replay.from_cache);
    EXPECT_EQ(prover.seed_patterns(20).size(), 1u);
}

TEST(PortfolioCecTest, CexPoolCapacityZeroDisablesPooling) {
    Aig g;
    g.add_po(g.and_reduce(g.add_pis(20)));
    Aig h;
    h.add_pis(20);
    h.add_po(lit_false);
    PortfolioOptions opts;
    opts.cex_pool_capacity = 0;
    PortfolioCec prover(opts);
    const auto report = prover.check(g, h);
    ASSERT_EQ(report.verdict, CecVerdict::NotEquivalent);
    EXPECT_TRUE(prover.seed_patterns(20).empty());
}

TEST(PortfolioCecTest, CexPoolEvictsFifoAtCapacity) {
    // Distinct witnesses from distinct refuted pairs; a capacity of 2
    // keeps only the most recent two (oldest evicted first).
    PortfolioOptions opts;
    opts.cex_pool_capacity = 2;
    opts.use_cache = false;  // every check runs the engines
    PortfolioCec prover(opts);

    // Pair k differs from const-false exactly on the assignment where
    // PIs k..19 are true and 0..k-1 false: each witness is unique.
    for (const std::size_t k : {0UL, 1UL, 2UL}) {
        Aig g;
        {
            const auto pis = g.add_pis(20);
            Lit acc = lit_true;
            for (std::size_t i = k; i < 20; ++i) {
                acc = g.and_(acc, pis[i]);
            }
            for (std::size_t i = 0; i < k; ++i) {
                acc = g.and_(acc, lit_not(pis[i]));
            }
            g.add_po(acc);
        }
        Aig h;
        h.add_pis(20);
        h.add_po(lit_false);
        ASSERT_EQ(prover.check(g, h).verdict, CecVerdict::NotEquivalent);
    }
    const auto pooled = prover.seed_patterns(20);
    ASSERT_EQ(pooled.size(), 2u);
    // The k=0 witness (all ones) was evicted; k=1 and k=2 remain, oldest
    // first.
    EXPECT_NE(pooled[0], std::vector<bool>(20, true));
    for (const auto& w : pooled) {
        EXPECT_EQ(w.size(), 20u);
    }
}

// ---------------------------------------------------------------------
// Racing on the shared pool (TSan coverage)

TEST(PortfolioCecTest, PooledRaceMatchesSequential) {
    bg::ThreadPool pool(3);
    PortfolioCec pooled({}, &pool);
    PortfolioCec sequential({}, nullptr);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Aig g = bg::test::redundant_aig(8, 26, 2, seed).compact();
        Aig opt = g;
        (void)bg::opt::standalone_pass(opt, bg::opt::OpKind::Rewrite);
        EXPECT_EQ(pooled.check(g, opt).verdict,
                  sequential.check(g, opt).verdict);
        const Aig bad = flip_first_po(g);
        EXPECT_EQ(pooled.check(g, bad).verdict,
                  sequential.check(g, bad).verdict);
    }
}

TEST(PortfolioCecTest, CheckFromInsidePoolJobDoesNotDeadlock) {
    // The serving pattern: verification runs inside a job on the same
    // pool that races the engines.  Saturate a 2-thread pool with jobs
    // that each verify — caller participation must keep this live.
    bg::ThreadPool pool(2);
    PortfolioCec prover({}, &pool);
    const Aig g = bg::test::redundant_aig(8, 24, 2, 7).compact();
    const Aig bad = flip_first_po(g);
    std::vector<std::future<void>> jobs;
    std::atomic<int> definitive{0};
    for (int j = 0; j < 6; ++j) {
        jobs.push_back(pool.submit([&] {
            const auto r = prover.check(g, bad);
            if (r.verdict == CecVerdict::NotEquivalent) {
                definitive.fetch_add(1);
            }
        }));
    }
    for (auto& f : jobs) {
        f.get();
    }
    EXPECT_EQ(definitive.load(), 6);
}

// ---------------------------------------------------------------------
// End-to-end: flow / engine / service

bg::core::ModelConfig tiny_model_config() {
    bg::core::ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 21;
    return cfg;
}

bg::core::FlowConfig tiny_verified_flow() {
    bg::core::FlowConfig fc;
    fc.num_samples = 16;
    fc.top_k = 3;
    fc.seed = 11;
    fc.verify = true;
    return fc;
}

TEST(FlowVerify, RunFlowReportsVerdictOnRegistryDesigns) {
    const bg::core::BoolGebraModel model(tiny_model_config());
    const auto cfg = tiny_verified_flow();
    for (const char* name : {"b07", "b08", "b09"}) {
        const auto design = bg::circuits::make_benchmark_scaled(name, 0.5);
        const auto res = bg::core::run_flow(design, model, cfg);
        ASSERT_TRUE(res.verification.has_value()) << name;
        EXPECT_EQ(res.verification->verdict, CecVerdict::Equivalent)
            << name << ": every committed result must be proven";
        EXPECT_FALSE(res.verification->from_cache) << name;
    }
}

TEST(FlowVerify, VerifyOffLeavesReportEmpty) {
    const bg::core::BoolGebraModel model(tiny_model_config());
    auto cfg = tiny_verified_flow();
    cfg.verify = false;
    const auto design = bg::circuits::make_benchmark_scaled("b09", 0.4);
    const auto res = bg::core::run_flow(design, model, cfg);
    EXPECT_FALSE(res.verification.has_value());
}

TEST(FlowVerify, IteratedRoundsProveEndToEnd) {
    const bg::core::BoolGebraModel model(tiny_model_config());
    const bg::core::DesignJob job{
        "b08", bg::circuits::make_benchmark_scaled("b08", 0.5)};
    const auto res = bg::core::run_design_flow(job, model,
                                               tiny_verified_flow(),
                                               /*rounds=*/2, nullptr);
    ASSERT_TRUE(res.verification.has_value());
    EXPECT_EQ(res.verification->verdict, CecVerdict::Equivalent);
}

TEST(FlowVerify, CorruptedResultIsRefutedWithValidCounterexample) {
    // The acceptance gate: a deliberately corrupted "optimized" netlist
    // must be refuted, and the counterexample must survive simulation.
    const Aig design = bg::circuits::make_benchmark_scaled("b09", 0.5);
    const Aig corrupted = flip_first_po(design);
    PortfolioCec prover;
    const auto report = prover.check(design, corrupted);
    ASSERT_EQ(report.verdict, CecVerdict::NotEquivalent);
    if (!report.counterexample.empty()) {
        EXPECT_TRUE(cex_distinguishes(design, corrupted,
                                      report.counterexample));
    }
}

TEST(FlowVerify, ServiceCountsVerdictsInStats) {
    auto model =
        std::make_shared<bg::core::BoolGebraModel>(tiny_model_config());
    bg::core::ServiceConfig scfg;
    scfg.workers = 2;
    scfg.flow = tiny_verified_flow();
    bg::core::FlowService service(scfg, model);
    ASSERT_NE(service.prover(), nullptr);

    std::vector<std::future<bg::core::DesignFlowResult>> futures;
    for (const char* name : {"b08", "b09", "b10"}) {
        futures.push_back(service.submit(
            {name, bg::circuits::make_benchmark_scaled(name, 0.4)}));
    }
    for (auto& f : futures) {
        const auto res = f.get();
        ASSERT_TRUE(res.verification.has_value());
        EXPECT_EQ(res.verification->verdict, CecVerdict::Equivalent);
    }
    service.stop();
    const auto st = service.stats();
    EXPECT_EQ(st.jobs_verified, 3u);
    EXPECT_EQ(st.jobs_refuted, 0u);
    EXPECT_EQ(st.jobs_unknown, 0u);
    EXPECT_EQ(st.jobs_unverified, 0u);
    EXPECT_GE(st.verify_cache_lookups, 3u);
}

TEST(FlowVerify, ServiceWithVerifyOffHasNoProver) {
    auto model =
        std::make_shared<bg::core::BoolGebraModel>(tiny_model_config());
    bg::core::ServiceConfig scfg;
    scfg.workers = 1;
    scfg.flow = tiny_verified_flow();
    scfg.flow.verify = false;
    bg::core::FlowService service(scfg, model);
    EXPECT_EQ(service.prover(), nullptr);
    auto f = service.submit(
        {"b09", bg::circuits::make_benchmark_scaled("b09", 0.3)});
    EXPECT_FALSE(f.get().verification.has_value());
    service.stop();
    EXPECT_EQ(service.stats().jobs_unverified, 1u);
}

TEST(FlowVerify, EngineBatchTalliesVerification) {
    const bg::core::BoolGebraModel model(tiny_model_config());
    bg::core::EngineConfig ecfg;
    ecfg.workers = 2;
    ecfg.flow = tiny_verified_flow();
    bg::core::FlowEngine engine(ecfg);
    std::vector<bg::core::DesignJob> jobs;
    for (const char* name : {"b08", "b09"}) {
        jobs.push_back(
            {name, bg::circuits::make_benchmark_scaled(name, 0.4)});
    }
    const auto batch = engine.run(jobs, model);
    EXPECT_EQ(batch.jobs_verified, 2u);
    EXPECT_EQ(batch.jobs_refuted, 0u);
    EXPECT_EQ(batch.jobs_unknown, 0u);
}

TEST(EngineToString, CoversAllEngines) {
    EXPECT_EQ(bg::verify::to_string(Engine::None), "none");
    EXPECT_EQ(bg::verify::to_string(Engine::Simulation), "sim");
    EXPECT_EQ(bg::verify::to_string(Engine::Bdd), "bdd");
    EXPECT_EQ(bg::verify::to_string(Engine::Sat), "sat");
    EXPECT_EQ(bg::verify::to_string(Engine::Cache), "cache");
}

}  // namespace
