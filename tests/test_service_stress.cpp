/// \file test_service_stress.cpp
/// TSan stress for the multi-tenant FlowService internals: the latency
/// ring behind the p50/p95 stats, the weighted admission queues, and the
/// per-tenant counters, all hammered by concurrent submit / cancel /
/// stats / model-swap / stop_now callers.  The assertions are counter
/// conservation laws; the real verdict is the TSan CI job finding no
/// data race in the interleavings this generates.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "core/flow_service.hpp"
#include "util/cancel.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

ModelConfig stress_model_config(std::uint64_t seed = 21) {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = seed;
    return cfg;
}

ServiceConfig stress_service_config() {
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.flow.num_samples = 8;
    cfg.flow.top_k = 2;
    cfg.flow.seed = 5;
    cfg.latency_window = 16;  // tiny ring -> constant wraparound
    return cfg;
}

TEST(ServiceStress, ConcurrentSubmitCancelStatsSwap) {
    const auto model_a =
        std::make_shared<const BoolGebraModel>(stress_model_config(21));
    const auto model_b =
        std::make_shared<const BoolGebraModel>(stress_model_config(77));
    FlowService service(stress_service_config(), model_a);
    TenantConfig x;
    x.name = "x";
    x.weight = 2;
    TenantConfig y;
    y.name = "y";
    y.max_pending = 64;
    service.register_tenant(x);
    service.register_tenant(y);

    const auto design = bg::circuits::make_benchmark_scaled("b07", 0.3);
    const char* tenants[] = {"", "x", "y"};

    constexpr std::size_t kProducers = 3;
    constexpr std::size_t kJobsEach = 24;
    std::mutex mu;
    std::vector<std::future<DesignFlowResult>> futures;
    std::vector<std::shared_ptr<bg::CancelToken>> tokens;
    std::atomic<bool> producing{true};
    std::atomic<std::uint64_t> accepted{0};

    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (std::size_t j = 0; j < kJobsEach; ++j) {
                SubmitOptions opts;
                opts.tenant = tenants[(p + j) % 3];
                opts.cancel = std::make_shared<bg::CancelToken>();
                auto fut = service.submit(
                    {"p" + std::to_string(p) + "-" + std::to_string(j),
                     design},
                    opts);
                accepted.fetch_add(1, std::memory_order_relaxed);
                const std::lock_guard<std::mutex> lock(mu);
                futures.push_back(std::move(fut));
                tokens.push_back(std::move(opts.cancel));
            }
        });
    }
    // Cancel every third accepted job, racing the workers for it.
    threads.emplace_back([&] {
        std::size_t next = 0;
        while (producing.load(std::memory_order_relaxed)) {
            std::shared_ptr<bg::CancelToken> victim;
            {
                const std::lock_guard<std::mutex> lock(mu);
                if (next < tokens.size()) {
                    victim = tokens[next];
                    next += 3;
                }
            }
            if (victim) {
                victim->request_cancel();
            } else {
                std::this_thread::yield();
            }
        }
    });
    // Two readers hammering the stats snapshot (latency ring included).
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&] {
            while (producing.load(std::memory_order_relaxed)) {
                const auto st = service.stats();
                EXPECT_LE(st.jobs_completed, st.jobs_submitted);
                EXPECT_GE(st.p95_latency_seconds, 0.0);
            }
        });
    }
    // Hot-swaps racing everything else.
    threads.emplace_back([&] {
        for (int i = 0; producing.load(std::memory_order_relaxed); ++i) {
            service.swap_model((i % 2) == 0 ? model_b : model_a);
            service.swap_tenant_model("x", (i % 2) == 0 ? model_a
                                                        : nullptr);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });

    for (std::size_t p = 0; p < kProducers; ++p) {
        threads[p].join();
    }
    // Resolve every future before stopping the helper threads so the
    // stats readers also observe the draining phase.
    std::size_t ok = 0;
    std::size_t cancelled = 0;
    for (auto& fut : futures) {
        try {
            (void)fut.get();
            ++ok;
        } catch (const bg::CancelledError&) {
            ++cancelled;
        }
    }
    producing.store(false, std::memory_order_relaxed);
    for (std::size_t t = kProducers; t < threads.size(); ++t) {
        threads[t].join();
    }

    EXPECT_EQ(accepted.load(), kProducers * kJobsEach);
    EXPECT_EQ(ok + cancelled, kProducers * kJobsEach);
    const auto st = service.stats();
    EXPECT_EQ(st.jobs_submitted, kProducers * kJobsEach);
    EXPECT_EQ(st.jobs_completed, kProducers * kJobsEach);
    EXPECT_EQ(st.jobs_pending, 0u);
    EXPECT_EQ(st.jobs_cancelled, cancelled);
    std::uint64_t tenant_submitted = 0;
    std::uint64_t tenant_completed = 0;
    for (const auto& slice : st.tenants) {
        tenant_submitted += slice.jobs_submitted;
        tenant_completed += slice.jobs_completed;
        EXPECT_EQ(slice.jobs_pending, 0u) << slice.name;
    }
    EXPECT_EQ(tenant_submitted, st.jobs_submitted)
        << "per-tenant slices must conserve the global counter";
    EXPECT_EQ(tenant_completed, st.jobs_completed);
    service.stop();
}

TEST(ServiceStress, StopNowUnderConcurrentSubmitters) {
    const auto model =
        std::make_shared<const BoolGebraModel>(stress_model_config());
    FlowService service(stress_service_config(), model);
    const auto design = bg::circuits::make_benchmark_scaled("b09", 0.3);

    std::mutex mu;
    std::vector<std::future<DesignFlowResult>> futures;
    std::atomic<std::uint64_t> rejected_after_stop{0};
    constexpr std::size_t kProducers = 4;
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (std::size_t j = 0; j < 50; ++j) {
                try {
                    auto fut = service.submit(
                        {"s" + std::to_string(p) + "-" + std::to_string(j),
                         design});
                    const std::lock_guard<std::mutex> lock(mu);
                    futures.push_back(std::move(fut));
                } catch (const AdmissionError& e) {
                    EXPECT_EQ(e.kind(), AdmissionError::Kind::Stopped);
                    rejected_after_stop.fetch_add(
                        1, std::memory_order_relaxed);
                    return;  // service is gone; this producer is done
                }
            }
        });
    }
    // Let the queues fill a little, then pull the plug mid-stream.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    service.stop_now();
    for (auto& t : producers) {
        t.join();
    }

    // Every future the service *accepted* must resolve definitively.
    std::size_t ok = 0;
    std::size_t cancelled = 0;
    for (auto& fut : futures) {
        try {
            (void)fut.get();
            ++ok;
        } catch (const bg::CancelledError&) {
            ++cancelled;
        }
    }
    const auto st = service.stats();
    EXPECT_EQ(ok + cancelled, futures.size());
    EXPECT_EQ(st.jobs_submitted, futures.size());
    EXPECT_EQ(st.jobs_completed, futures.size());
    EXPECT_EQ(st.jobs_pending, 0u);
}

}  // namespace
