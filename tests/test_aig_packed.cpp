#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aig/aig.hpp"
#include "circuits/registry.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity

// ---------------------------------------------------------------------------
// NodeRef semantics
// ---------------------------------------------------------------------------

TEST(NodeRef, RawWordCoincidesWithLiteralEncoding) {
    const NodeRef r(5, true);
    EXPECT_EQ(r.raw(), make_lit(5, true));
    EXPECT_EQ(r.lit(), make_lit(5, true));
    EXPECT_EQ(r.index(), 5u);
    EXPECT_TRUE(r.complemented());

    const NodeRef p(5, false);
    EXPECT_EQ(p.raw(), make_lit(5, false));
    EXPECT_FALSE(p.complemented());

    // Round trip through the literal encoding is the identity.
    for (const Lit l : {lit_false, lit_true, make_lit(7), make_lit(7, true)}) {
        EXPECT_EQ(NodeRef::from_lit(l).lit(), l);
    }
}

TEST(NodeRef, ComplementOperators) {
    const NodeRef r(9, false);
    EXPECT_EQ((!r).lit(), make_lit(9, true));
    EXPECT_EQ((!!r).lit(), r.lit());
    EXPECT_EQ((r ^ true).lit(), make_lit(9, true));
    EXPECT_EQ((r ^ false).lit(), r.lit());
    EXPECT_EQ((!r).regular().lit(), make_lit(9, false));
}

TEST(NodeRef, OrderingMatchesLiteralOrdering) {
    // and_()'s fanin normalization compares literals; NodeRef must agree.
    const NodeRef a(3, false);
    const NodeRef b(3, true);
    const NodeRef c(4, false);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b < c);
    EXPECT_TRUE(make_lit(3, false) < make_lit(3, true));
    EXPECT_TRUE(make_lit(3, true) < make_lit(4, false));
}

TEST(NodeRef, NullAndConstants) {
    EXPECT_TRUE(null_ref.is_null());
    EXPECT_TRUE(NodeRef::from_lit(lit_false).is_const0());
    EXPECT_TRUE(NodeRef::from_lit(lit_true).is_const1());
    EXPECT_FALSE(NodeRef(2, false).is_null());
    const NodeRef d;  // default-constructed == null
    EXPECT_TRUE(d.is_null());
}

// ---------------------------------------------------------------------------
// Packed layout
// ---------------------------------------------------------------------------

TEST(PackedLayout, NodeRecordStaysWithin16Bytes) {
    EXPECT_LE(Aig::node_bytes(), 16u);
    EXPECT_EQ(sizeof(NodeRef), 4u);
}

TEST(PackedLayout, MemoryStatsAccountForCoreArrays) {
    Aig g = bg::circuits::make_benchmark("b07");
    const auto m = g.memory_stats();
    EXPECT_GE(m.node_array_bytes, g.num_slots() * Aig::node_bytes());
    EXPECT_GT(m.fanout_bytes, 0u);
    EXPECT_GT(m.strash_bytes, 0u);
    EXPECT_GT(m.po_count_bytes, 0u);
    EXPECT_EQ(m.total(), m.node_array_bytes + m.fanout_bytes +
                             m.strash_bytes + m.po_count_bytes);
}

TEST(PackedLayout, FaninRefAccessorsAgreeWithLiteralAccessors) {
    const Aig g = bg::circuits::make_benchmark("b08");
    for (const Var v : g.topo_ands()) {
        EXPECT_EQ(g.fanin0_ref(v).lit(), g.fanin0(v));
        EXPECT_EQ(g.fanin1_ref(v).lit(), g.fanin1(v));
        const auto [f0, f1] = g.fanin_refs(v);
        EXPECT_EQ(f0.lit(), g.fanin0(v));
        EXPECT_EQ(f1.lit(), g.fanin1(v));
        EXPECT_EQ(f0.index(), lit_var(g.fanin0(v)));
        EXPECT_EQ(f0.complemented(), lit_is_compl(g.fanin0(v)));
    }
    for (std::size_t i = 0; i < g.num_pos(); ++i) {
        EXPECT_EQ(g.po_ref(i).lit(), g.po(i));
    }
}

TEST(PackedLayout, ReservePreservesBehavior) {
    Aig a;
    Aig b;
    b.reserve(1000);
    const Lit xa0 = a.add_pi();
    const Lit xb0 = b.add_pi();
    const Lit xa1 = a.add_pi();
    const Lit xb1 = b.add_pi();
    EXPECT_EQ(a.and_(xa0, xa1), b.and_(xb0, xb1));
    EXPECT_EQ(a.xor_(xa0, xa1), b.xor_(xb0, xb1));
    a.check_integrity();
    b.check_integrity();
}

// ---------------------------------------------------------------------------
// Fanout arena: iteration order is load-bearing (topo_all / Kahn)
// ---------------------------------------------------------------------------

TEST(FanoutArena, AppendOrderMatchesInsertion) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit n1 = g.and_(a, b);
    const Lit n2 = g.and_(a, c);
    const Lit n3 = g.and_(a, lit_not(b));
    const Var av = lit_var(a);
    const auto fo = g.fanouts(av);
    ASSERT_EQ(fo.size(), 3u);
    EXPECT_EQ(fo[0], lit_var(n1));
    EXPECT_EQ(fo[1], lit_var(n2));
    EXPECT_EQ(fo[2], lit_var(n3));
}

TEST(FanoutArena, RemoveUsesSwapWithBack) {
    // delete_unreferenced removes the first occurrence and swaps the back
    // in — the historical vector semantics every topo order depends on.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit n1 = g.and_(a, b);
    const Lit n2 = g.and_(a, c);
    const Lit n3 = g.and_(a, lit_not(c));
    g.add_po(n2);
    g.add_po(n3);
    // n1 is unreferenced; deleting it removes lit_var(n1) from a's list.
    g.delete_unreferenced(lit_var(n1));
    const auto fo = g.fanouts(lit_var(a));
    ASSERT_EQ(fo.size(), 2u);
    EXPECT_EQ(fo[0], lit_var(n3));  // back swapped into slot 0
    EXPECT_EQ(fo[1], lit_var(n2));
    g.check_integrity();
}

TEST(FanoutArena, HighFanoutGrowthKeepsOrder) {
    Aig g;
    const Lit a = g.add_pi();
    std::vector<Lit> pis;
    std::vector<Var> expect;
    for (int i = 0; i < 200; ++i) {
        pis.push_back(g.add_pi());
    }
    for (int i = 0; i < 200; ++i) {
        expect.push_back(lit_var(g.and_(a, pis[static_cast<std::size_t>(i)])));
    }
    const auto fo = g.fanouts(lit_var(a));
    ASSERT_EQ(fo.size(), expect.size());
    EXPECT_TRUE(std::equal(fo.begin(), fo.end(), expect.begin()));
    g.check_integrity();
}

TEST(FanoutArena, ChurnTriggersRepackWithoutCorruption) {
    // Build/destroy enough structure to force arena block moves and the
    // leak-reclaiming repack, then audit the graph.
    Aig g;
    bg::Rng rng(7);
    std::vector<Lit> pool = g.add_pis(16);
    for (int round = 0; round < 60; ++round) {
        std::vector<Lit> roots;
        for (int i = 0; i < 40; ++i) {
            const Lit x = pool[rng.next_u64() % pool.size()];
            const Lit y = pool[rng.next_u64() % pool.size()];
            const Lit z =
                g.and_(rng.next_u64() % 2 ? x : lit_not(x),
                       rng.next_u64() % 2 ? y : lit_not(y));
            roots.push_back(z);
            pool.push_back(z);
        }
        // Drop every root again; unreferenced cones die and leak arena
        // blocks until repack reclaims them.
        for (const Lit r : roots) {
            pool.erase(std::find(pool.begin(), pool.end(), r));
            g.delete_unreferenced(lit_var(r));
        }
        g.check_integrity();
    }
}

// ---------------------------------------------------------------------------
// Open-addressing strash under churn
// ---------------------------------------------------------------------------

TEST(StrashMap, LookupSurvivesTombstoneChurn) {
    Aig g;
    const auto pis = g.add_pis(10);
    bg::Rng rng(13);
    for (int round = 0; round < 50; ++round) {
        std::vector<Lit> created;
        for (int i = 0; i < 30; ++i) {
            const Lit x = pis[rng.next_u64() % pis.size()];
            const Lit y = pis[rng.next_u64() % pis.size()];
            created.push_back(g.and_(x, lit_not(y)));
        }
        // Strash hits must return the same node while alive.
        for (std::size_t i = 0; i < created.size(); ++i) {
            if (g.is_and(lit_var(created[i])) &&
                !g.is_dead(lit_var(created[i]))) {
                const Var v = lit_var(created[i]);
                EXPECT_EQ(g.lookup_and(g.fanin0(v), g.fanin1(v)),
                          make_lit(v));
            }
        }
        for (const Lit c : created) {
            g.delete_unreferenced(lit_var(c));
        }
        g.check_integrity();  // includes strash <-> node cross-audit
    }
    EXPECT_EQ(g.num_ands(), 0u);
}

// ---------------------------------------------------------------------------
// O(1) po_refs
// ---------------------------------------------------------------------------

std::size_t po_refs_by_scan(const Aig& g, Var v) {
    std::size_t n = 0;
    for (const Lit po : g.pos()) {
        n += lit_var(po) == v ? 1 : 0;
    }
    return n;
}

TEST(PoRefs, CountsMatchScanAfterChurn) {
    Aig g;
    const auto pis = g.add_pis(6);
    const Lit n1 = g.and_(pis[0], pis[1]);
    const Lit n2 = g.and_(n1, pis[2]);
    const Lit n3 = g.and_(pis[3], pis[4]);
    g.add_po(n2);
    g.add_po(lit_not(n2));
    g.add_po(n3);
    g.add_po(pis[5]);
    for (Var v = 0; v < g.num_slots(); ++v) {
        EXPECT_EQ(g.po_refs(v), po_refs_by_scan(g, v)) << "var " << v;
    }
    // replace() must migrate the counters with the PO patches.
    g.replace(lit_var(n2), n3);
    for (Var v = 0; v < g.num_slots(); ++v) {
        EXPECT_EQ(g.po_refs(v), po_refs_by_scan(g, v)) << "var " << v;
    }
    EXPECT_EQ(g.po_refs(lit_var(n3)), 3u);
    g.check_integrity();  // audits po_ref_counts_ against pos_
}

TEST(PoRefs, CompactRebuildsCounts) {
    Aig g = bg::circuits::make_benchmark_scaled("b09", 0.3);
    const Aig c = g.compact();
    for (Var v = 0; v < c.num_slots(); ++v) {
        EXPECT_EQ(c.po_refs(v), po_refs_by_scan(c, v));
    }
    c.check_integrity();
}

// ---------------------------------------------------------------------------
// Replace cascades on the packed layout
// ---------------------------------------------------------------------------

TEST(PackedLayout, ReplaceCascadePreservesIntegrity) {
    // A replace that triggers strash merges exercises patch_fanout's
    // erase/re-insert path on the open-addressing table.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit ab = g.and_(a, b);
    const Lit ac = g.and_(a, c);
    const Lit top1 = g.and_(ab, c);
    const Lit top2 = g.and_(ac, b);
    g.add_po(top1);
    g.add_po(top2);
    // Replacing ac with ab collapses top2 into and_(ab, b).
    g.replace(lit_var(ac), ab);
    g.check_integrity();
    EXPECT_FALSE(g.is_dead(lit_var(top1)));
}

}  // namespace
