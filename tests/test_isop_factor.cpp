#include <gtest/gtest.h>

#include "tt/factor.hpp"
#include "tt/isop.hpp"
#include "tt/sop.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using bg::tt::Cube;
using bg::tt::FactorForm;
using bg::tt::Sop;
using bg::tt::TruthTable;

TruthTable random_tt(unsigned nv, bg::Rng& rng) {
    TruthTable f(nv);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
        f.set_bit(m, rng.next_bool());
    }
    return f;
}

TEST(Cube, LiteralCountAndContainment) {
    Cube c;
    c.pos = 0b0101;
    c.neg = 0b1000;
    EXPECT_EQ(c.num_literals(), 3u);
    EXPECT_TRUE(c.has_var(0));
    EXPECT_FALSE(c.has_var(1));
    EXPECT_TRUE(c.has_var(3));
    Cube sub;
    sub.pos = 0b0001;
    EXPECT_TRUE(c.contains(sub));
    EXPECT_FALSE(sub.contains(c));
}

TEST(Sop, TruthTableOfCubes) {
    // f = a!b + c over 3 vars.
    Sop s(3);
    s.add_cube(Cube{.pos = 0b001, .neg = 0b010});
    s.add_cube(Cube{.pos = 0b100, .neg = 0});
    const auto a = TruthTable::nth_var(3, 0);
    const auto b = TruthTable::nth_var(3, 1);
    const auto c = TruthTable::nth_var(3, 2);
    EXPECT_EQ(s.to_tt(), ((a & ~b) | c));
    EXPECT_EQ(s.num_literals(), 3u);
}

TEST(Sop, EmptyCubeIsConstOne) {
    Sop s(2);
    s.add_cube(Cube{});
    EXPECT_TRUE(s.to_tt().is_const1());
}

TEST(Sop, EmptyCoverIsConstZero) {
    const Sop s(4);
    EXPECT_TRUE(s.to_tt().is_const0());
}

TEST(Sop, LiteralOccurrences) {
    Sop s(2);
    s.add_cube(Cube{.pos = 0b01, .neg = 0});
    s.add_cube(Cube{.pos = 0b11, .neg = 0});
    s.add_cube(Cube{.pos = 0b10, .neg = 0b01});
    EXPECT_EQ(s.literal_occurrences(0, true), 2u);
    EXPECT_EQ(s.literal_occurrences(0, false), 1u);
    EXPECT_EQ(s.literal_occurrences(1, true), 2u);
}

TEST(Isop, ExactCoverOnRandomFunctions) {
    bg::Rng rng(42);
    for (unsigned nv : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
        for (int iter = 0; iter < 30; ++iter) {
            const auto f = random_tt(nv, rng);
            const auto cover = bg::tt::isop(f);
            EXPECT_EQ(cover.to_tt(), f)
                << "ISOP must reproduce the function exactly (nv=" << nv
                << ")";
        }
    }
}

TEST(Isop, ConstantFunctions) {
    const auto zero_cover = bg::tt::isop(TruthTable::zeros(4));
    EXPECT_TRUE(zero_cover.empty());
    const auto one_cover = bg::tt::isop(TruthTable::ones(4));
    ASSERT_EQ(one_cover.num_cubes(), 1u);
    EXPECT_EQ(one_cover.cubes()[0].num_literals(), 0u);
}

TEST(Isop, SingleMinterm) {
    TruthTable f(3);
    f.set_bit(0b101, true);
    const auto cover = bg::tt::isop(f);
    ASSERT_EQ(cover.num_cubes(), 1u);
    EXPECT_EQ(cover.cubes()[0].pos, 0b101u);
    EXPECT_EQ(cover.cubes()[0].neg, 0b010u);
}

TEST(Isop, RespectsDontCares) {
    bg::Rng rng(43);
    for (int iter = 0; iter < 50; ++iter) {
        const unsigned nv = 5;
        auto on = random_tt(nv, rng);
        auto dc = random_tt(nv, rng);
        dc &= ~on;  // disjoint
        const auto cover = bg::tt::isop(on, dc);
        const auto g = cover.to_tt();
        EXPECT_TRUE(on.implies(g)) << "cover must include the onset";
        EXPECT_TRUE(g.implies(on | dc)) << "cover must avoid the offset";
    }
}

TEST(Isop, IrredundantCubes) {
    // Dropping any single cube must break the cover.
    bg::Rng rng(44);
    for (int iter = 0; iter < 25; ++iter) {
        const auto f = random_tt(4, rng);
        const auto cover = bg::tt::isop(f);
        for (std::size_t drop = 0; drop < cover.num_cubes(); ++drop) {
            Sop reduced(cover.num_vars());
            for (std::size_t i = 0; i < cover.num_cubes(); ++i) {
                if (i != drop) {
                    reduced.add_cube(cover.cubes()[i]);
                }
            }
            EXPECT_NE(reduced.to_tt(), f)
                << "cube " << drop << " is redundant";
        }
    }
}

TEST(Isop, XorNeedsExponentialCubes) {
    // Parity of n vars has 2^(n-1) prime implicants — a sanity check that
    // we produce a minimal-size family for the hardest case.
    auto f = TruthTable::nth_var(4, 0);
    for (unsigned i = 1; i < 4; ++i) {
        f ^= TruthTable::nth_var(4, i);
    }
    const auto cover = bg::tt::isop(f);
    EXPECT_EQ(cover.num_cubes(), 8u);
}

TEST(Isop, BestPhasePicksSmaller) {
    // f = a + b + c + d : one cube in the complement, four in the direct.
    auto f = TruthTable::zeros(4);
    for (unsigned i = 0; i < 4; ++i) {
        f |= TruthTable::nth_var(4, i);
    }
    bool complemented = false;
    const auto cover = bg::tt::isop_best_phase(f, complemented);
    EXPECT_TRUE(complemented);
    EXPECT_EQ(cover.num_cubes(), 1u);
}

TEST(Factor, PreservesFunctionOnRandom) {
    bg::Rng rng(45);
    for (unsigned nv : {2u, 3u, 4u, 5u, 6u}) {
        for (int iter = 0; iter < 25; ++iter) {
            const auto f = random_tt(nv, rng);
            const auto cover = bg::tt::isop(f);
            const auto ff = bg::tt::factor(cover);
            EXPECT_EQ(ff.to_tt(), f);
        }
    }
}

TEST(Factor, SharesCommonLiteral) {
    // ab + ac + ad factors as a(b + c + d): 4 literals instead of 6.
    Sop s(4);
    s.add_cube(Cube{.pos = 0b0011, .neg = 0});
    s.add_cube(Cube{.pos = 0b0101, .neg = 0});
    s.add_cube(Cube{.pos = 0b1001, .neg = 0});
    const auto ff = bg::tt::factor(s);
    EXPECT_EQ(ff.literal_count(), 4u);
    EXPECT_EQ(ff.to_tt(), s.to_tt());
}

TEST(Factor, AigNodeCountMatchesGateKinds) {
    // a(b + c): one OR + one AND = 2 AIG nodes.
    Sop s(3);
    s.add_cube(Cube{.pos = 0b011, .neg = 0});
    s.add_cube(Cube{.pos = 0b101, .neg = 0});
    const auto ff = bg::tt::factor(s);
    EXPECT_EQ(ff.aig_node_count(), 2u);
}

TEST(Factor, ConstantsAndSingleLiterals) {
    const auto zero = bg::tt::factor(Sop(3));
    EXPECT_TRUE(zero.is_constant());
    EXPECT_TRUE(zero.to_tt().is_const0());

    Sop one(3);
    one.add_cube(Cube{});
    const auto one_ff = bg::tt::factor(one);
    EXPECT_TRUE(one_ff.to_tt().is_const1());

    Sop lit(3);
    lit.add_cube(Cube{.pos = 0, .neg = 0b100});
    const auto lit_ff = bg::tt::factor(lit);
    EXPECT_EQ(lit_ff.literal_count(), 1u);
    EXPECT_EQ(lit_ff.to_tt(), ~TruthTable::nth_var(3, 2));
}

TEST(Factor, DepthIsLogarithmicForWideCubes) {
    // One cube with 16 literals: balanced AND tree depth should be 4.
    Sop s(16);
    Cube c;
    c.pos = 0xFFFF;
    s.add_cube(c);
    const auto ff = bg::tt::factor(s);
    EXPECT_EQ(ff.aig_node_count(), 15u);
    EXPECT_EQ(ff.depth(), 4u);
}

TEST(Factor, StringRenderingIsAlgebraic) {
    Sop s(3);
    s.add_cube(Cube{.pos = 0b011, .neg = 0});
    s.add_cube(Cube{.pos = 0b101, .neg = 0});
    const auto ff = bg::tt::factor(s);
    const auto str = ff.to_string();
    EXPECT_NE(str.find("a"), std::string::npos);
    EXPECT_NE(str.find("+"), std::string::npos);
}

class IsopFactorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(IsopFactorSweep, EndToEndFunctionPreservation) {
    const unsigned seed = GetParam();
    bg::Rng rng(seed);
    const unsigned nv = 2 + static_cast<unsigned>(rng.next_below(7));
    const auto f = random_tt(nv, rng);
    const auto cover = bg::tt::isop(f);
    const auto ff = bg::tt::factor(cover);
    ASSERT_EQ(ff.to_tt(), f) << "seed=" << seed << " nv=" << nv;
    // Factoring must never increase literal count beyond the flat SOP.
    EXPECT_LE(ff.literal_count(), cover.num_literals());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IsopFactorSweep,
                         ::testing::Range(0u, 40u));

}  // namespace
