#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "aig/simulation.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity

Aig random_aig(unsigned num_pis, int num_nodes, unsigned num_pos,
               std::uint64_t seed) {
    bg::Rng rng(seed);
    Aig g;
    const auto pis = g.add_pis(num_pis);
    std::vector<Lit> pool(pis);
    for (int k = 0; k < num_nodes; ++k) {
        const Lit u =
            lit_not_cond(pool[rng.next_below(pool.size())], rng.next_bool());
        const Lit v =
            lit_not_cond(pool[rng.next_below(pool.size())], rng.next_bool());
        pool.push_back(g.and_(u, v));
    }
    for (unsigned k = 0; k < num_pos; ++k) {
        g.add_po(lit_not_cond(pool[pool.size() - 1 - k], (k & 1) != 0));
    }
    return g;
}

TEST(Aiger, WriteReadRoundTrip) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const Aig g = random_aig(6, 40, 3, seed);
        const auto text = bg::io::write_aiger_string(g);
        const Aig h = bg::io::read_aiger_string(text);
        EXPECT_EQ(h.num_pis(), g.num_pis());
        EXPECT_EQ(h.num_pos(), g.num_pos());
        EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent)
            << "seed " << seed;
    }
}

TEST(Aiger, KnownDocument) {
    // AND of two inputs; standard aag example.
    const std::string doc =
        "aag 3 2 0 1 1\n"
        "2\n"
        "4\n"
        "6\n"
        "6 2 4\n";
    const Aig g = bg::io::read_aiger_string(doc);
    EXPECT_EQ(g.num_pis(), 2u);
    EXPECT_EQ(g.num_pos(), 1u);
    EXPECT_EQ(g.num_ands(), 1u);
}

TEST(Aiger, ComplementedOutput) {
    const std::string doc =
        "aag 3 2 0 1 1\n"
        "2\n"
        "4\n"
        "7\n"
        "6 3 5\n";  // NOR(a, b) = !a & !b, output inverted => OR? no: out=!(..)
    const Aig g = bg::io::read_aiger_string(doc);
    EXPECT_EQ(g.num_ands(), 1u);
    ASSERT_EQ(g.num_pos(), 1u);
    EXPECT_TRUE(lit_is_compl(g.po(0)));
}

TEST(Aiger, ConstantOutputs) {
    const std::string doc =
        "aag 2 2 0 2 0\n"
        "2\n"
        "4\n"
        "0\n"
        "1\n";
    const Aig g = bg::io::read_aiger_string(doc);
    EXPECT_EQ(g.po(0), lit_false);
    EXPECT_EQ(g.po(1), lit_true);
}

TEST(Aiger, RejectsLatches) {
    const std::string doc = "aag 1 0 1 0 0\n2 2\n";
    EXPECT_THROW((void)bg::io::read_aiger_string(doc), std::runtime_error);
}

TEST(Aiger, RejectsMalformedHeader) {
    EXPECT_THROW((void)bg::io::read_aiger_string("not an aiger file\n"),
                 std::runtime_error);
    EXPECT_THROW((void)bg::io::read_aiger_string(""), std::runtime_error);
}

TEST(Aiger, RejectsUndefinedLiteral) {
    const std::string doc =
        "aag 3 1 0 1 1\n"
        "2\n"
        "6\n"
        "6 2 8\n";  // 8 undefined
    EXPECT_THROW((void)bg::io::read_aiger_string(doc), std::runtime_error);
}

TEST(Aiger, FileRoundTrip) {
    const Aig g = random_aig(5, 25, 2, 99);
    const auto path =
        std::filesystem::temp_directory_path() / "bg_test_roundtrip.aag";
    bg::io::write_aiger_file(g, path);
    const Aig h = bg::io::read_aiger_file(path);
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
    std::filesystem::remove(path);
}

TEST(Bench, ParseBasicGates) {
    const std::string doc =
        "# comment line\n"
        "INPUT(a)\n"
        "INPUT(b)\n"
        "INPUT(c)\n"
        "OUTPUT(f)\n"
        "t1 = AND(a, b)\n"
        "t2 = OR(t1, c)\n"
        "f = NOT(t2)\n";
    const Aig g = bg::io::read_bench_string(doc);
    EXPECT_EQ(g.num_pis(), 3u);
    EXPECT_EQ(g.num_pos(), 1u);
    // f = !(ab + c): check truth via simulation.
    const auto pos = po_signatures(g, simulate(g, exhaustive_patterns(3)));
    for (unsigned m = 0; m < 8; ++m) {
        const bool a = m & 1;
        const bool b = (m >> 1) & 1;
        const bool c = (m >> 2) & 1;
        EXPECT_EQ((pos[0][0] >> m) & 1,
                  static_cast<std::uint64_t>(!((a && b) || c)));
    }
}

TEST(Bench, OutOfOrderDefinitions) {
    const std::string doc =
        "INPUT(a)\n"
        "INPUT(b)\n"
        "OUTPUT(f)\n"
        "f = AND(t, a)\n"  // t defined later
        "t = OR(a, b)\n";
    const Aig g = bg::io::read_bench_string(doc);
    EXPECT_EQ(g.num_pos(), 1u);
}

TEST(Bench, MultiInputGatesAndXor) {
    const std::string doc =
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n"
        "OUTPUT(f)\nOUTPUT(gx)\n"
        "f = NAND(a, b, c, d)\n"
        "gx = XOR(a, b, c)\n";
    const Aig g = bg::io::read_bench_string(doc);
    const auto pos = po_signatures(g, simulate(g, exhaustive_patterns(4)));
    for (unsigned m = 0; m < 16; ++m) {
        const bool a = m & 1;
        const bool b = (m >> 1) & 1;
        const bool c = (m >> 2) & 1;
        const bool d = (m >> 3) & 1;
        EXPECT_EQ((pos[0][0] >> m) & 1,
                  static_cast<std::uint64_t>(!(a && b && c && d)));
        EXPECT_EQ((pos[1][0] >> m) & 1, static_cast<std::uint64_t>(a ^ b ^ c));
    }
}

TEST(Bench, RejectsSequential) {
    const std::string doc =
        "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
    EXPECT_THROW((void)bg::io::read_bench_string(doc), std::runtime_error);
}

TEST(Bench, RejectsUndefined) {
    const std::string doc = "INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n";
    EXPECT_THROW((void)bg::io::read_bench_string(doc), std::runtime_error);
}

TEST(Bench, WriteReadRoundTrip) {
    for (std::uint64_t seed : {11ULL, 12ULL}) {
        const Aig g = random_aig(5, 30, 3, seed);
        const auto text = bg::io::write_bench_string(g);
        const Aig h = bg::io::read_bench_string(text);
        EXPECT_EQ(h.num_pis(), g.num_pis());
        EXPECT_EQ(h.num_pos(), g.num_pos());
        EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent)
            << "seed " << seed;
    }
}

TEST(Bench, AigerBenchCrossRoundTrip) {
    const Aig g = random_aig(6, 35, 2, 5);
    const Aig via_bench =
        bg::io::read_bench_string(bg::io::write_bench_string(g));
    const Aig via_aiger =
        bg::io::read_aiger_string(bg::io::write_aiger_string(via_bench));
    EXPECT_EQ(check_equivalence(g, via_aiger), CecVerdict::Equivalent);
}

}  // namespace
