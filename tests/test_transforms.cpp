#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "opt/transform.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::apply_candidate;
using bg::opt::check_op;
using bg::opt::check_refactor;
using bg::opt::check_resub;
using bg::opt::check_rewrite;
using bg::opt::CheckResult;
using bg::opt::OpKind;
using bg::opt::OptParams;

TEST(OpKind, PaperEncoding) {
    EXPECT_EQ(bg::opt::op_index(OpKind::Rewrite), 0);
    EXPECT_EQ(bg::opt::op_index(OpKind::Resub), 1);
    EXPECT_EQ(bg::opt::op_index(OpKind::Refactor), 2);
    EXPECT_EQ(bg::opt::op_from_index(0), OpKind::Rewrite);
    EXPECT_EQ(bg::opt::op_from_index(2), OpKind::Refactor);
    EXPECT_EQ(bg::opt::to_string(OpKind::Rewrite), "rw");
    EXPECT_EQ(bg::opt::to_string(OpKind::Resub), "rs");
    EXPECT_EQ(bg::opt::to_string(OpKind::Refactor), "rf");
    EXPECT_THROW((void)bg::opt::op_from_index(9), bg::ContractViolation);
}

TEST(Rewrite, FindsMuxCollapse) {
    // f = c a + !c a == a : rewrite must find gain 3.
    Aig g;
    const Lit c = g.add_pi();
    const Lit a = g.add_pi();
    const Lit t0 = g.and_(c, a);
    const Lit t1 = g.and_(lit_not(c), a);
    const Lit f = g.or_(t0, t1);
    g.add_po(f);
    EXPECT_EQ(g.num_ands(), 3u);
    const auto res = check_rewrite(g, lit_var(f));
    ASSERT_TRUE(res.applicable);
    EXPECT_EQ(res.gain.size_delta, 3);
    const auto actual = apply_candidate(g, lit_var(f), res.cand);
    EXPECT_EQ(actual.size_delta, 3);
    g.check_integrity(Aig::CheckLevel::Strict);
    EXPECT_EQ(g.num_ands(), 0u);
    EXPECT_EQ(g.po(0), a);
}

TEST(Rewrite, CheckIsReadOnly) {
    auto g = bg::test::redundant_aig(7, 25, 3, 17);
    const auto slots = g.num_slots();
    const auto ands_count = g.num_ands();
    for (const Var v : g.topo_ands()) {
        (void)check_rewrite(g, v);
    }
    EXPECT_EQ(g.num_slots(), slots);
    EXPECT_EQ(g.num_ands(), ands_count);
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Rewrite, NoFalseApplicability) {
    // On an irredundant structure (single AND), rewrite must not claim a
    // positive-gain transform.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    const auto res = check_rewrite(g, lit_var(x));
    EXPECT_FALSE(res.applicable);
}

TEST(Refactor, FactorsDistributedProduct) {
    // ab + ac: 4 nodes as built; factored a(b+c) needs 2.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit f = g.or_(g.and_(a, b), g.and_(a, c));
    g.add_po(f);
    EXPECT_EQ(g.num_ands(), 3u);
    const auto res = check_refactor(g, lit_var(f));
    ASSERT_TRUE(res.applicable);
    EXPECT_GE(res.gain.size_delta, 1);
    Aig before = g;
    apply_candidate(g, lit_var(f), res.cand);
    g.check_integrity(Aig::CheckLevel::Strict);
    EXPECT_EQ(check_equivalence(before, g), CecVerdict::Equivalent);
    EXPECT_LE(g.num_ands(), 2u);
}

TEST(Resub, FindsEqualCone) {
    // Build the same function twice with different shapes; rs replaces one
    // root by the other.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit left = g.and_(g.and_(a, b), c);   // (ab)c
    const Lit right = g.and_(a, g.and_(b, c));  // a(bc)
    const Lit keep = g.and_(left, g.add_pi());
    g.add_po(keep);
    g.add_po(right);
    const auto res = check_resub(g, lit_var(right));
    ASSERT_TRUE(res.applicable);
    Aig before = g;
    apply_candidate(g, lit_var(right), res.cand);
    g.check_integrity(Aig::CheckLevel::Strict);
    EXPECT_EQ(check_equivalence(before, g), CecVerdict::Equivalent);
    EXPECT_LT(g.num_ands(), before.num_ands());
}

TEST(Resub, ZeroResubPrefersWholeMffc) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    // Two re-derivations of a & b & c.
    const Lit x = g.and_(g.and_(a, b), c);
    const Lit y = g.and_(g.and_(a, c), b);
    g.add_po(x);
    g.add_po(y);
    const auto res = check_resub(g, lit_var(y));
    ASSERT_TRUE(res.applicable);
    EXPECT_EQ(res.gain.size_delta, 2)
        << "both nodes of y's cone should be freed";
}

TEST(AllOps, GainEstimatesAreHonest) {
    // Property: measured gain from apply_candidate is at least the
    // estimate (cascaded strash merges can only help).
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        for (const OpKind op :
             {OpKind::Rewrite, OpKind::Resub, OpKind::Refactor}) {
            auto g = bg::test::redundant_aig(7, 30, 3, seed);
            const auto order = g.topo_ands();
            for (const Var v : order) {
                if (g.is_dead(v)) {
                    continue;
                }
                const auto res = check_op(g, v, op);
                if (!res.applicable) {
                    continue;
                }
                Aig before = g;
                const auto actual = apply_candidate(g, v, res.cand);
                g.check_integrity(Aig::CheckLevel::Strict);
                ASSERT_GE(actual.size_delta, res.gain.size_delta)
                    << to_string(op) << " at node " << v << " seed " << seed;
                ASSERT_EQ(check_equivalence(before, g),
                          CecVerdict::Equivalent)
                    << to_string(op) << " broke the function at node " << v;
            }
        }
    }
}

TEST(AllOps, ChecksAreReadOnlyEverywhere) {
    auto g = bg::test::redundant_aig(8, 40, 3, 23);
    const auto text_before = g.to_string();
    const auto slots = g.num_slots();
    for (const Var v : g.topo_ands()) {
        (void)check_op(g, v, OpKind::Rewrite);
        (void)check_op(g, v, OpKind::Resub);
        (void)check_op(g, v, OpKind::Refactor);
    }
    EXPECT_EQ(g.to_string(), text_before);
    EXPECT_EQ(g.num_slots(), slots);
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(AllOps, NoneOpNeverApplies) {
    auto g = bg::test::redundant_aig(6, 20, 2, 3);
    for (const Var v : g.topo_ands()) {
        EXPECT_FALSE(check_op(g, v, OpKind::None).applicable);
    }
}

TEST(AllOps, ZeroGainModeAcceptsNeutralMoves) {
    OptParams relaxed;
    relaxed.allow_zero_gain = true;
    auto g = bg::test::redundant_aig(7, 30, 3, 9);
    std::size_t strict_hits = 0;
    std::size_t relaxed_hits = 0;
    for (const Var v : g.topo_ands()) {
        strict_hits += check_rewrite(g, v).applicable ? 1 : 0;
        relaxed_hits += check_rewrite(g, v, relaxed).applicable ? 1 : 0;
    }
    EXPECT_GE(relaxed_hits, strict_hits);
}

class TransformSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(TransformSweep, FullPassPreservesFunction) {
    const auto [seed, op_idx] = GetParam();
    const OpKind op = bg::opt::op_from_index(op_idx);
    auto g = bg::test::redundant_aig(8, 35, 4, seed);
    const Aig original = g;
    for (const Var v : g.topo_ands()) {
        if (g.is_dead(v)) {
            continue;
        }
        const auto res = check_op(g, v, op);
        if (res.applicable) {
            apply_candidate(g, v, res.cand);
        }
    }
    g.check_integrity(Aig::CheckLevel::Strict);
    EXPECT_EQ(check_equivalence(original, g), CecVerdict::Equivalent)
        << "seed " << seed << " op " << to_string(op);
    EXPECT_LE(g.num_ands(), original.num_ands());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndOps, TransformSweep,
    ::testing::Combine(::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL),
                       ::testing::Values(0, 1, 2)));

}  // namespace
