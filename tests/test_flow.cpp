#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/flow.hpp"
#include "core/trainer.hpp"
#include "opt/standalone.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity
using bg::aig::Aig;
using bg::aig::Var;
using bg::opt::OpKind;

ModelConfig tiny_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 21;
    return cfg;
}

TEST(Flow, PredictedAppliedUsesStaticApplicability) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const auto st = compute_static_features(g);
    bg::Rng rng(1);
    const auto d = random_decisions(g, rng);
    const auto applied = predicted_applied(g, d, st);
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (!g.is_and(v)) {
            EXPECT_EQ(applied[v], OpKind::None);
            continue;
        }
        const int col = 2 + 2 * bg::opt::op_index(d[v]);
        if (st[v][static_cast<std::size_t>(col)] > 0.5F) {
            EXPECT_EQ(applied[v], d[v]);
        } else {
            EXPECT_EQ(applied[v], OpKind::None);
        }
    }
}

TEST(Flow, GenerateDecisionsShapes) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const auto st = compute_static_features(g);
    const auto guided = generate_decisions(g, 12, /*guided=*/true, 5, st);
    const auto random = generate_decisions(g, 12, /*guided=*/false, 5, st);
    EXPECT_EQ(guided.size(), 12u);
    EXPECT_EQ(random.size(), 12u);
    for (const auto& d : guided) {
        EXPECT_EQ(d.size(), g.num_slots());
    }
    // Guided base (index 0) differs from a purely random vector with
    // overwhelming probability.
    EXPECT_NE(guided[0], random[0]);
}

TEST(Flow, EndToEndProducesValidRatios) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.5);

    // Train a small model on the design first.
    const auto records = generate_guided_samples(g, 30, 2);
    const auto ds = build_dataset(g, records);
    BoolGebraModel model(tiny_config());
    TrainConfig tc = TrainConfig::quick();
    tc.epochs = 20;
    tc.batch_size = 8;
    (void)train_model(model, ds, tc);

    FlowConfig fc;
    fc.num_samples = 40;
    fc.top_k = 5;
    fc.seed = 77;
    const auto res = run_flow(g, model, fc);

    EXPECT_EQ(res.original_size, g.num_ands());
    EXPECT_EQ(res.predictions.size(), 40u);
    EXPECT_EQ(res.selected.size(), 5u);
    EXPECT_EQ(res.reductions.size(), 5u);
    EXPECT_GE(res.best_reduction, 0);
    EXPECT_GT(res.bg_best_ratio, 0.0);
    EXPECT_LE(res.bg_best_ratio, 1.0);
    EXPECT_GE(res.bg_mean_ratio, res.bg_best_ratio);
    // Selected indices must be the k smallest predictions.
    for (const auto idx : res.selected) {
        ASSERT_LT(idx, res.predictions.size());
    }
    double worst_selected = 0.0;
    for (const auto idx : res.selected) {
        worst_selected = std::max(worst_selected, res.predictions[idx]);
    }
    std::size_t better_than_worst = 0;
    for (const double p : res.predictions) {
        better_than_worst += p < worst_selected ? 1 : 0;
    }
    EXPECT_LE(better_than_worst, 5u);
}

TEST(Flow, BeatsOrMatchesStandaloneOnAverage) {
    // Table I's qualitative claim, in miniature: BG-Best should match or
    // beat each stand-alone pass (the flow evaluates several orchestrated
    // candidates including the priority-guided base).
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.5);
    const auto records = generate_guided_samples(g, 30, 4);
    const auto ds = build_dataset(g, records);
    BoolGebraModel model(tiny_config());
    TrainConfig tc = TrainConfig::quick();
    tc.epochs = 25;
    tc.batch_size = 8;
    (void)train_model(model, ds, tc);

    FlowConfig fc;
    fc.num_samples = 60;
    fc.top_k = 8;
    fc.seed = 9;
    const auto res = run_flow(g, model, fc);

    int best_standalone = 0;
    for (const OpKind op :
         {OpKind::Rewrite, OpKind::Resub, OpKind::Refactor}) {
        Aig copy = g;
        const auto r = bg::opt::standalone_pass(copy, op);
        best_standalone = std::max(best_standalone, r.reduction());
    }
    EXPECT_GE(res.best_reduction, best_standalone)
        << "BG-Best fell behind the best stand-alone pass";
}

TEST(Flow, DeterministicGivenSeed) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    BoolGebraModel m1(tiny_config());
    BoolGebraModel m2(tiny_config());
    FlowConfig fc;
    fc.num_samples = 20;
    fc.top_k = 4;
    fc.seed = 123;
    const auto r1 = run_flow(g, m1, fc);
    const auto r2 = run_flow(g, m2, fc);
    EXPECT_EQ(r1.predictions, r2.predictions);
    EXPECT_EQ(r1.selected, r2.selected);
    EXPECT_EQ(r1.reductions, r2.reductions);
}

}  // namespace
