#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "circuits/registry.hpp"
#include "core/sampling.hpp"
#include "util/parallel.hpp"

namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (const std::size_t n : {0UL, 1UL, 7UL, 100UL, 1000UL}) {
        std::vector<std::atomic<int>> hits(n);
        bg::parallel_for(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
        }
    }
}

TEST(ParallelFor, WorksWithExplicitWorkerCounts) {
    const std::size_t n = 64;
    for (const std::size_t workers : {1UL, 2UL, 3UL, 16UL, 100UL}) {
        std::vector<int> out(n, 0);
        bg::parallel_for(
            n, [&](std::size_t i) { out[i] = static_cast<int>(i * i); },
            workers);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i], static_cast<int>(i * i));
        }
    }
}

TEST(ParallelFor, DefaultWorkerCountIsPositive) {
    EXPECT_GE(bg::default_worker_count(), 1u);
}

TEST(ParallelDeterminism, SamplesIndependentOfWorkerScheduling) {
    // The sampling pipelines write into per-index slots, so results must
    // be identical regardless of thread interleaving.  Run the same batch
    // twice and compare exactly.
    const auto g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const auto a = bg::core::generate_guided_samples(g, 24, 5);
    const auto b = bg::core::generate_guided_samples(g, 24, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].reduction, b[i].reduction) << i;
        EXPECT_EQ(a[i].decisions, b[i].decisions) << i;
        EXPECT_EQ(a[i].applied, b[i].applied) << i;
    }
}

TEST(ParallelDeterminism, StaticFeaturesStable) {
    const auto g = bg::circuits::make_benchmark_scaled("b09", 0.5);
    const auto f1 = bg::core::compute_static_features(g);
    const auto f2 = bg::core::compute_static_features(g);
    ASSERT_EQ(f1.size(), f2.size());
    for (std::size_t v = 0; v < f1.size(); ++v) {
        EXPECT_EQ(f1[v], f2[v]) << "var " << v;
    }
}

}  // namespace
