#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>

#include "circuits/registry.hpp"
#include "core/sampling.hpp"
#include "util/parallel.hpp"

namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (const std::size_t n : {0UL, 1UL, 7UL, 100UL, 1000UL}) {
        std::vector<std::atomic<int>> hits(n);
        bg::parallel_for(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
        }
    }
}

TEST(ParallelFor, WorksWithExplicitWorkerCounts) {
    const std::size_t n = 64;
    for (const std::size_t workers : {1UL, 2UL, 3UL, 16UL, 100UL}) {
        std::vector<int> out(n, 0);
        bg::parallel_for(
            n, [&](std::size_t i) { out[i] = static_cast<int>(i * i); },
            workers);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i], static_cast<int>(i * i));
        }
    }
}

TEST(ParallelFor, DefaultWorkerCountIsPositive) {
    EXPECT_GE(bg::default_worker_count(), 1u);
}

TEST(ThreadPool, ReusedAcrossSubmissions) {
    bg::ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 4; ++batch) {
        std::vector<std::future<void>> done;
        for (int j = 0; j < 8; ++j) {
            done.push_back(pool.submit([&counter] { ++counter; }));
        }
        for (auto& fut : done) {
            fut.get();
        }
    }
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
    bg::ThreadPool pool(2);
    auto fut = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The worker survives the exception and keeps serving jobs.
    auto ok = pool.submit([] {});
    EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, DefaultWorkerCountWhenZero) {
    bg::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), bg::default_worker_count());
}

TEST(ThreadPool, ForEachCoversEveryIndexExactlyOnce) {
    for (const std::size_t workers : {1UL, 2UL, 5UL}) {
        bg::ThreadPool pool(workers);
        for (const std::size_t n : {0UL, 1UL, 7UL, 100UL, 1000UL}) {
            std::vector<std::atomic<int>> hits(n);
            pool.for_each(n, [&](std::size_t i) { ++hits[i]; });
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(hits[i].load(), 1)
                    << "workers " << workers << " index " << i;
            }
        }
    }
}

TEST(ThreadPool, ForEachOutputIndependentOfPoolSize) {
    const std::size_t n = 256;
    std::vector<long> reference(n);
    for (std::size_t i = 0; i < n; ++i) {
        reference[i] = static_cast<long>(i * i + 7);
    }
    for (const std::size_t workers : {1UL, 2UL, 8UL}) {
        bg::ThreadPool pool(workers);
        std::vector<long> out(n, -1);
        pool.for_each(n, [&](std::size_t i) {
            out[i] = static_cast<long>(i * i + 7);
        });
        EXPECT_EQ(out, reference) << "workers " << workers;
    }
}

TEST(ThreadPool, ForEachRethrowsFirstExceptionWithoutHanging) {
    bg::ThreadPool pool(3);
    for (int attempt = 0; attempt < 3; ++attempt) {
        std::atomic<int> ran{0};
        EXPECT_THROW(
            pool.for_each(64,
                          [&](std::size_t i) {
                              ++ran;
                              if (i % 5 == 0) {
                                  throw std::runtime_error("iteration");
                              }
                          }),
            std::runtime_error);
        EXPECT_GE(ran.load(), 1);
        // The pool stays usable after a failed fork-join.
        std::vector<int> out(16, 0);
        pool.for_each(16, [&](std::size_t i) {
            out[i] = static_cast<int>(i) + 1;
        });
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], static_cast<int>(i) + 1);
        }
    }
}

TEST(ThreadPool, NestedForEachInsidePoolJobsDoesNotDeadlock) {
    // Saturate the pool with outer jobs that each fork an inner loop on
    // the same pool; caller participation must keep everything moving.
    bg::ThreadPool pool(2);
    const std::size_t outer = 6;
    const std::size_t inner = 50;
    std::vector<std::vector<int>> out(outer,
                                      std::vector<int>(inner, 0));
    pool.for_each(outer, [&](std::size_t o) {
        pool.for_each(inner, [&, o](std::size_t i) {
            out[o][i] = static_cast<int>(o * inner + i);
        });
    });
    for (std::size_t o = 0; o < outer; ++o) {
        for (std::size_t i = 0; i < inner; ++i) {
            EXPECT_EQ(out[o][i], static_cast<int>(o * inner + i));
        }
    }
}

TEST(ParallelDeterminism, SamplesIndependentOfWorkerScheduling) {
    // The sampling pipelines write into per-index slots, so results must
    // be identical regardless of thread interleaving.  Run the same batch
    // twice and compare exactly.
    const auto g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const auto a = bg::core::generate_guided_samples(g, 24, 5);
    const auto b = bg::core::generate_guided_samples(g, 24, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].reduction, b[i].reduction) << i;
        EXPECT_EQ(a[i].decisions, b[i].decisions) << i;
        EXPECT_EQ(a[i].applied, b[i].applied) << i;
    }
}

TEST(ParallelDeterminism, StaticFeaturesStable) {
    const auto g = bg::circuits::make_benchmark_scaled("b09", 0.5);
    const auto f1 = bg::core::compute_static_features(g);
    const auto f2 = bg::core::compute_static_features(g);
    ASSERT_EQ(f1.size(), f2.size());
    for (std::size_t v = 0; v < f1.size(); ++v) {
        EXPECT_EQ(f1[v], f2[v]) << "var " << v;
    }
}

}  // namespace
