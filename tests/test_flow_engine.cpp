#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/flow_engine.hpp"
#include "io/aiger.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

ModelConfig tiny_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 21;
    return cfg;
}

FlowConfig tiny_flow() {
    FlowConfig fc;
    fc.num_samples = 24;
    fc.top_k = 4;
    fc.seed = 11;
    return fc;
}

std::vector<DesignJob> tiny_jobs() {
    std::vector<DesignJob> jobs;
    for (const char* name : {"b07", "b09", "b10"}) {
        jobs.push_back({name, bg::circuits::make_benchmark_scaled(name, 0.3)});
    }
    return jobs;
}

void expect_same_flow(const FlowResult& got, const FlowResult& want) {
    EXPECT_EQ(got.original_size, want.original_size);
    EXPECT_EQ(got.predictions, want.predictions);
    EXPECT_EQ(got.selected, want.selected);
    EXPECT_EQ(got.reductions, want.reductions);
    EXPECT_EQ(got.best_reduction, want.best_reduction);
    EXPECT_EQ(got.bg_best_ratio, want.bg_best_ratio);
    EXPECT_EQ(got.bg_mean_ratio, want.bg_mean_ratio);
    EXPECT_EQ(got.best_decisions, want.best_decisions);
}

TEST(FlowEngine, BatchedMatchesSequentialAtEveryWorkerCount) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};

    // Sequential reference, one plain run_flow per design.
    std::vector<FlowResult> reference;
    for (const auto& job : jobs) {
        BoolGebraModel m(model);
        reference.push_back(run_flow(job.design, m, tiny_flow()));
    }

    for (const std::size_t workers : {1UL, 2UL, 8UL}) {
        EngineConfig cfg;
        cfg.workers = workers;
        cfg.flow = tiny_flow();
        FlowEngine engine(cfg);
        const auto batch = engine.run(jobs, model);
        ASSERT_EQ(batch.designs.size(), jobs.size()) << workers;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) + " design=" +
                         jobs[i].name);
            EXPECT_EQ(batch.designs[i].name, jobs[i].name);
            expect_same_flow(batch.designs[i].flow, reference[i]);
        }
    }
}

TEST(FlowEngine, RepeatedRunsAreIdentical) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.workers = 4;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto a = engine.run(jobs, model);
    const auto b = engine.run(jobs, model);  // pool reuse across batches
    ASSERT_EQ(a.designs.size(), b.designs.size());
    for (std::size_t i = 0; i < a.designs.size(); ++i) {
        SCOPED_TRACE(a.designs[i].name);
        expect_same_flow(a.designs[i].flow, b.designs[i].flow);
        EXPECT_EQ(a.designs[i].iterated.final_size,
                  b.designs[i].iterated.final_size);
    }
}

TEST(FlowEngine, IteratedRoundsMatchRunIteratedFlow) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.rounds = 3;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto batch = engine.run(jobs, model);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        BoolGebraModel m(model);
        const auto want =
            run_iterated_flow(jobs[i].design, m, cfg.flow, cfg.rounds);
        const auto& got = batch.designs[i].iterated;
        EXPECT_EQ(got.original_size, want.original_size);
        EXPECT_EQ(got.final_size, want.final_size);
        EXPECT_EQ(got.per_round_reduction, want.per_round_reduction);
        EXPECT_EQ(got.final_ratio, want.final_ratio);
    }
}

TEST(FlowEngine, SingleShotFinalRatioIsBgBest) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto batch = engine.run(jobs, model);
    for (const auto& d : batch.designs) {
        SCOPED_TRACE(d.name);
        EXPECT_EQ(d.iterated.final_ratio, d.flow.bg_best_ratio);
        EXPECT_EQ(d.samples_run, cfg.flow.num_samples);
    }
}

TEST(FlowEngine, AggregatesAreMeansOfPerDesignRatios) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto batch = engine.run(jobs, model);

    double best = 0.0;
    double mean = 0.0;
    std::size_t samples = 0;
    for (const auto& d : batch.designs) {
        best += d.flow.bg_best_ratio;
        mean += d.flow.bg_mean_ratio;
        samples += d.samples_run;
    }
    const auto n = static_cast<double>(batch.designs.size());
    EXPECT_DOUBLE_EQ(batch.avg_bg_best_ratio, best / n);
    EXPECT_DOUBLE_EQ(batch.avg_bg_mean_ratio, mean / n);
    EXPECT_EQ(batch.total_samples, samples);
    EXPECT_GT(batch.total_seconds, 0.0);
    EXPECT_GT(batch.designs_per_second, 0.0);
    EXPECT_GT(batch.samples_per_second, 0.0);
}

TEST(FlowEngine, EmptyBatchYieldsNeutralAggregates) {
    const BoolGebraModel model{tiny_config()};
    FlowEngine engine;
    const auto batch = engine.run({}, model);
    EXPECT_TRUE(batch.designs.empty());
    EXPECT_EQ(batch.avg_bg_best_ratio, 1.0);
    EXPECT_EQ(batch.avg_bg_mean_ratio, 1.0);
    EXPECT_EQ(batch.total_samples, 0u);
}

TEST(FlowEngineHelpers, JobsFromRegistryBuildsScaledDesigns) {
    const std::vector<std::string> names = {"b07", "b10"};
    const auto full = jobs_from_registry(names);
    const auto scaled = jobs_from_registry(names, 0.3);
    ASSERT_EQ(full.size(), 2u);
    ASSERT_EQ(scaled.size(), 2u);
    EXPECT_EQ(full[0].name, "b07");
    EXPECT_GT(full[0].design.num_ands(), scaled[0].design.num_ands());
    const std::vector<std::string> unknown = {"no_such_design"};
    EXPECT_THROW((void)jobs_from_registry(unknown), std::out_of_range);
}

TEST(FlowEngine, SamplesRunCountsOnlyExecutedRounds) {
    // Iterated flow with a generous round budget: the engine must report
    // the decision vectors actually scored (executed rounds, including
    // the final unproductive one), not rounds * num_samples.
    const DesignJob job = {"b09",
                          bg::circuits::make_benchmark_scaled("b09", 0.3)};
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.rounds = 10;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto res = engine.run_one(job, model);

    // The flow stops committing long before the budget on this tiny
    // design; the early-break round still ran (and is still counted).
    ASSERT_LT(res.iterated.rounds(), cfg.rounds);
    const std::size_t executed = res.iterated.rounds() + 1;
    EXPECT_EQ(res.samples_run, executed * cfg.flow.num_samples);
    EXPECT_LT(res.samples_run, cfg.rounds * cfg.flow.num_samples);
    EXPECT_EQ(res.flow.samples_evaluated, cfg.flow.num_samples);
}

TEST(FlowEngineHelpers, ScaledGeneratorIsIdentityAtScaleOne) {
    // jobs_from_registry routes every scale through make_benchmark_scaled;
    // that is only sound if scale 1.0 reproduces make_benchmark exactly.
    for (const auto& name : bg::circuits::benchmark_names()) {
        SCOPED_TRACE(name);
        const auto direct = bg::circuits::make_benchmark(name);
        const auto scaled = bg::circuits::make_benchmark_scaled(name, 1.0);
        EXPECT_EQ(bg::io::write_aiger_string(direct),
                  bg::io::write_aiger_string(scaled));
    }
    const std::vector<std::string> names = {"b07"};
    const auto jobs = jobs_from_registry(names);  // default scale 1.0
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(bg::io::write_aiger_string(jobs[0].design),
              bg::io::write_aiger_string(bg::circuits::make_benchmark("b07")));
}

TEST(FlowEngineHelpers, GlobMatchEdgeCases) {
    // Empty pattern / empty text.
    EXPECT_TRUE(glob_match("", ""));
    EXPECT_FALSE(glob_match("", "a"));
    EXPECT_FALSE(glob_match("a", ""));
    EXPECT_TRUE(glob_match("*", ""));
    EXPECT_TRUE(glob_match("**", ""));
    EXPECT_FALSE(glob_match("?", ""));

    // Literals and '?'.
    EXPECT_TRUE(glob_match("b07", "b07"));
    EXPECT_FALSE(glob_match("b07", "b08"));
    EXPECT_FALSE(glob_match("b07", "b071"));
    EXPECT_TRUE(glob_match("b0?", "b07"));
    EXPECT_FALSE(glob_match("b0?", "b0"));
    EXPECT_FALSE(glob_match("b0?", "b077"));
    EXPECT_TRUE(glob_match("???", "b07"));

    // '*' runs, prefixes, suffixes.
    EXPECT_TRUE(glob_match("*", "anything"));
    EXPECT_TRUE(glob_match("b*", "b12"));
    EXPECT_TRUE(glob_match("*7", "b07"));
    EXPECT_TRUE(glob_match("b*7", "b07"));
    EXPECT_TRUE(glob_match("b*7", "b7"));
    EXPECT_FALSE(glob_match("b*7", "b08"));
    EXPECT_TRUE(glob_match("c*0", "c2670"));

    // Repeated-star backtracking: the second star must be able to re-seek
    // after the first match attempt fails.
    EXPECT_TRUE(glob_match("*a*b", "xaxxab"));
    EXPECT_TRUE(glob_match("a*b*c", "aXbXbc"));
    EXPECT_FALSE(glob_match("a*b*c", "aXbXb"));
    EXPECT_TRUE(glob_match("*ab", "ababab"));
    EXPECT_FALSE(glob_match("*ab*x", "ababab"));
    EXPECT_TRUE(glob_match("a?*c", "abc"));
    EXPECT_FALSE(glob_match("a?*c", "ac"));

    // Mixed star/question with trailing stars.
    EXPECT_TRUE(glob_match("b1*", "b1"));
    EXPECT_TRUE(glob_match("b1**", "b12"));
    EXPECT_FALSE(glob_match("b1*2*4", "b1234X"));
    EXPECT_TRUE(glob_match("b1*2*4", "b1X2X4"));
}

TEST(FlowEngineHelpers, RegistryPatternExpansion) {
    const auto all_names = bg::circuits::benchmark_names();
    EXPECT_EQ(expand_registry_pattern("*"), all_names);

    const auto b1x = expand_registry_pattern("b1?");
    for (const auto& name : b1x) {
        EXPECT_EQ(name.size(), 3u);
        EXPECT_EQ(name.substr(0, 2), "b1");
    }
    EXPECT_FALSE(b1x.empty());

    const auto literal = expand_registry_pattern("b07");
    ASSERT_EQ(literal.size(), 1u);
    EXPECT_EQ(literal[0], "b07");

    EXPECT_TRUE(expand_registry_pattern("zzz*").empty());
}

}  // namespace
