#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/flow_engine.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

ModelConfig tiny_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 21;
    return cfg;
}

FlowConfig tiny_flow() {
    FlowConfig fc;
    fc.num_samples = 24;
    fc.top_k = 4;
    fc.seed = 11;
    return fc;
}

std::vector<DesignJob> tiny_jobs() {
    std::vector<DesignJob> jobs;
    for (const char* name : {"b07", "b09", "b10"}) {
        jobs.push_back({name, bg::circuits::make_benchmark_scaled(name, 0.3)});
    }
    return jobs;
}

void expect_same_flow(const FlowResult& got, const FlowResult& want) {
    EXPECT_EQ(got.original_size, want.original_size);
    EXPECT_EQ(got.predictions, want.predictions);
    EXPECT_EQ(got.selected, want.selected);
    EXPECT_EQ(got.reductions, want.reductions);
    EXPECT_EQ(got.best_reduction, want.best_reduction);
    EXPECT_EQ(got.bg_best_ratio, want.bg_best_ratio);
    EXPECT_EQ(got.bg_mean_ratio, want.bg_mean_ratio);
    EXPECT_EQ(got.best_decisions, want.best_decisions);
}

TEST(FlowEngine, BatchedMatchesSequentialAtEveryWorkerCount) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};

    // Sequential reference, one plain run_flow per design.
    std::vector<FlowResult> reference;
    for (const auto& job : jobs) {
        BoolGebraModel m(model);
        reference.push_back(run_flow(job.design, m, tiny_flow()));
    }

    for (const std::size_t workers : {1UL, 2UL, 8UL}) {
        EngineConfig cfg;
        cfg.workers = workers;
        cfg.flow = tiny_flow();
        FlowEngine engine(cfg);
        const auto batch = engine.run(jobs, model);
        ASSERT_EQ(batch.designs.size(), jobs.size()) << workers;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) + " design=" +
                         jobs[i].name);
            EXPECT_EQ(batch.designs[i].name, jobs[i].name);
            expect_same_flow(batch.designs[i].flow, reference[i]);
        }
    }
}

TEST(FlowEngine, RepeatedRunsAreIdentical) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.workers = 4;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto a = engine.run(jobs, model);
    const auto b = engine.run(jobs, model);  // pool reuse across batches
    ASSERT_EQ(a.designs.size(), b.designs.size());
    for (std::size_t i = 0; i < a.designs.size(); ++i) {
        SCOPED_TRACE(a.designs[i].name);
        expect_same_flow(a.designs[i].flow, b.designs[i].flow);
        EXPECT_EQ(a.designs[i].iterated.final_size,
                  b.designs[i].iterated.final_size);
    }
}

TEST(FlowEngine, IteratedRoundsMatchRunIteratedFlow) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.rounds = 3;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto batch = engine.run(jobs, model);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        BoolGebraModel m(model);
        const auto want =
            run_iterated_flow(jobs[i].design, m, cfg.flow, cfg.rounds);
        const auto& got = batch.designs[i].iterated;
        EXPECT_EQ(got.original_size, want.original_size);
        EXPECT_EQ(got.final_size, want.final_size);
        EXPECT_EQ(got.per_round_reduction, want.per_round_reduction);
        EXPECT_EQ(got.final_ratio, want.final_ratio);
    }
}

TEST(FlowEngine, SingleShotFinalRatioIsBgBest) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto batch = engine.run(jobs, model);
    for (const auto& d : batch.designs) {
        SCOPED_TRACE(d.name);
        EXPECT_EQ(d.iterated.final_ratio, d.flow.bg_best_ratio);
        EXPECT_EQ(d.samples_run, cfg.flow.num_samples);
    }
}

TEST(FlowEngine, AggregatesAreMeansOfPerDesignRatios) {
    const auto jobs = tiny_jobs();
    const BoolGebraModel model{tiny_config()};
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.flow = tiny_flow();
    FlowEngine engine(cfg);
    const auto batch = engine.run(jobs, model);

    double best = 0.0;
    double mean = 0.0;
    std::size_t samples = 0;
    for (const auto& d : batch.designs) {
        best += d.flow.bg_best_ratio;
        mean += d.flow.bg_mean_ratio;
        samples += d.samples_run;
    }
    const auto n = static_cast<double>(batch.designs.size());
    EXPECT_DOUBLE_EQ(batch.avg_bg_best_ratio, best / n);
    EXPECT_DOUBLE_EQ(batch.avg_bg_mean_ratio, mean / n);
    EXPECT_EQ(batch.total_samples, samples);
    EXPECT_GT(batch.total_seconds, 0.0);
    EXPECT_GT(batch.designs_per_second, 0.0);
    EXPECT_GT(batch.samples_per_second, 0.0);
}

TEST(FlowEngine, EmptyBatchYieldsNeutralAggregates) {
    const BoolGebraModel model{tiny_config()};
    FlowEngine engine;
    const auto batch = engine.run({}, model);
    EXPECT_TRUE(batch.designs.empty());
    EXPECT_EQ(batch.avg_bg_best_ratio, 1.0);
    EXPECT_EQ(batch.avg_bg_mean_ratio, 1.0);
    EXPECT_EQ(batch.total_samples, 0u);
}

TEST(FlowEngineHelpers, JobsFromRegistryBuildsScaledDesigns) {
    const std::vector<std::string> names = {"b07", "b10"};
    const auto full = jobs_from_registry(names);
    const auto scaled = jobs_from_registry(names, 0.3);
    ASSERT_EQ(full.size(), 2u);
    ASSERT_EQ(scaled.size(), 2u);
    EXPECT_EQ(full[0].name, "b07");
    EXPECT_GT(full[0].design.num_ands(), scaled[0].design.num_ands());
    const std::vector<std::string> unknown = {"no_such_design"};
    EXPECT_THROW((void)jobs_from_registry(unknown), std::out_of_range);
}

TEST(FlowEngineHelpers, RegistryPatternExpansion) {
    const auto all_names = bg::circuits::benchmark_names();
    EXPECT_EQ(expand_registry_pattern("*"), all_names);

    const auto b1x = expand_registry_pattern("b1?");
    for (const auto& name : b1x) {
        EXPECT_EQ(name.size(), 3u);
        EXPECT_EQ(name.substr(0, 2), "b1");
    }
    EXPECT_FALSE(b1x.empty());

    const auto literal = expand_registry_pattern("b07");
    ASSERT_EQ(literal.size(), 1u);
    EXPECT_EQ(literal[0], "b07");

    EXPECT_TRUE(expand_registry_pattern("zzz*").empty());
}

}  // namespace
