#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/progress.hpp"

namespace {

using bg::Rng;

TEST(Contracts, AssertThrowsWithContext) {
    try {
        BG_ASSERT(1 == 2, "math is broken");
        FAIL() << "expected ContractViolation";
    } catch (const bg::ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("math is broken"), std::string::npos);
    }
}

TEST(Contracts, PassingAssertIsSilent) {
    EXPECT_NO_THROW(BG_ASSERT(2 + 2 == 4, ""));
    EXPECT_NO_THROW(BG_EXPECTS(true, ""));
    EXPECT_NO_THROW(BG_ENSURES(true, ""));
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next_u64() == b.next_u64() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Rng, NextBelowCoversAllValues) {
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        seen.insert(rng.next_below(7));
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveRange) {
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.next_in(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, DoubleInUnitInterval) {
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
    Rng rng(13);
    double sum = 0;
    double sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.next_gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SampleIndicesDistinct) {
    Rng rng(5);
    const auto idx = rng.sample_indices(20, 10);
    EXPECT_EQ(idx.size(), 10u);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 10u);
    for (const auto i : idx) {
        EXPECT_LT(i, 20u);
    }
}

TEST(Rng, SampleIndicesFullPermutation) {
    Rng rng(5);
    const auto idx = rng.sample_indices(8, 8);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 8u);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto w = v;
    rng.shuffle(w);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(w.begin(), w.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, SplitStreamsIndependent) {
    Rng a(99);
    Rng b = a.split();
    // The parent continues past the split deterministically.
    Rng a2(99);
    (void)a2.split();
    EXPECT_EQ(a.next_u64(), a2.next_u64());
    // The split stream differs from the parent.
    Rng c(99);
    EXPECT_NE(b.next_u64(), c.next_u64());
}

TEST(Stats, MeanAndStddev) {
    const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(bg::mean(v), 5.0);
    EXPECT_NEAR(bg::stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, SummaryOrderStatistics) {
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i) {
        v.push_back(i);
    }
    const auto s = bg::summarize(v);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 100);
    EXPECT_NEAR(s.median, 50.5, 1e-12);
    EXPECT_NEAR(s.p10, 10.9, 1e-9);
    EXPECT_NEAR(s.p90, 90.1, 1e-9);
}

TEST(Stats, EmptyInputsAreSafe) {
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(bg::mean(empty), 0.0);
    EXPECT_DOUBLE_EQ(bg::stddev(empty), 0.0);
    const auto s = bg::summarize(empty);
    EXPECT_EQ(s.count, 0u);
}

TEST(Stats, PearsonPerfectCorrelation) {
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(bg::pearson(x, y), 1.0, 1e-12);
    std::vector<double> ny;
    for (const double v : y) {
        ny.push_back(-v);
    }
    EXPECT_NEAR(bg::pearson(x, ny), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
    const std::vector<double> x{1, 1, 1, 1};
    const std::vector<double> y{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(bg::pearson(x, y), 0.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{1, 8, 27, 64, 125};  // monotone, nonlinear
    EXPECT_NEAR(bg::spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, RanksAverageTies) {
    const std::vector<double> v{10, 20, 20, 30};
    const auto r = bg::ranks(v);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, MseAndMae) {
    const std::vector<double> p{1, 2, 3};
    const std::vector<double> t{1, 4, 2};
    EXPECT_NEAR(bg::mse(p, t), (0 + 4 + 1) / 3.0, 1e-12);
    EXPECT_NEAR(bg::mae(p, t), (0 + 2 + 1) / 3.0, 1e-12);
}

TEST(Stats, HistogramBinning) {
    const std::vector<double> v{0.0, 0.1, 0.5, 0.9, 1.0};
    const auto h = bg::histogram(v, 2, 0.0, 1.0);
    // 0.5 lands exactly on the boundary -> bin 1; 1.0 clamps into bin 1.
    EXPECT_EQ(h.counts[0], 2u);
    EXPECT_EQ(h.counts[1], 3u);
    const auto d = h.densities();
    EXPECT_NEAR(d[0] + d[1], 1.0, 1e-12);
}

TEST(Stats, HistogramAutoRange) {
    const std::vector<double> v{5, 6, 7, 8};
    const auto h = bg::histogram(v, 4);
    EXPECT_DOUBLE_EQ(h.lo, 5);
    EXPECT_DOUBLE_EQ(h.hi, 8);
    std::size_t total = 0;
    for (const auto c : h.counts) {
        total += c;
    }
    EXPECT_EQ(total, 4u);
}

TEST(Csv, EscapeRoundTrip) {
    EXPECT_EQ(bg::csv_escape("plain"), "plain");
    EXPECT_EQ(bg::csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(bg::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, ParseSimple) {
    const auto t = bg::parse_csv("a,b,c\n1,2,3\n4,5,6\n", true);
    ASSERT_EQ(t.header.size(), 3u);
    EXPECT_EQ(t.header[1], "b");
    ASSERT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.rows[1][2], "6");
}

TEST(Csv, ParseQuotedCells) {
    const auto t = bg::parse_csv("\"x,y\",\"he said \"\"no\"\"\"\nv,w\n", false);
    ASSERT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.rows[0][0], "x,y");
    EXPECT_EQ(t.rows[0][1], "he said \"no\"");
}

TEST(Csv, FileRoundTrip) {
    bg::CsvTable t;
    t.header = {"node", "decision"};
    t.rows = {{"0", "rw"}, {"1", "rs"}, {"2", "rf"}};
    const auto path = std::filesystem::temp_directory_path() /
                      "bg_csv_roundtrip_test.csv";
    bg::save_csv(path, t);
    const auto u = bg::load_csv(path, true);
    EXPECT_EQ(u.header, t.header);
    EXPECT_EQ(u.rows, t.rows);
    std::filesystem::remove(path);
}

TEST(Table, AlignedRendering) {
    bg::TablePrinter tp({"Design", "Size"});
    tp.add_row({"b07", "366"});
    tp.add_row({"c5315", "1778"});
    const auto s = tp.str();
    EXPECT_NE(s.find("Design"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    EXPECT_NE(s.find("c5315"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
    bg::TablePrinter tp({"a", "b"});
    EXPECT_THROW(tp.add_row({"only-one"}), bg::ContractViolation);
}

}  // namespace
