#include <gtest/gtest.h>

#include "tt/npn.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using bg::tt::NpnTransform;
using bg::tt::npn_apply;
using bg::tt::npn_canonize;
using bg::tt::npn_compose;
using bg::tt::npn_invert;

TEST(Npn, IdentityTransform) {
    const NpnTransform id;
    for (std::uint32_t f = 0; f <= 0xFFFF; f += 257) {
        EXPECT_EQ(npn_apply(static_cast<std::uint16_t>(f), id), f);
    }
}

TEST(Npn, OutputNegation) {
    NpnTransform t;
    t.output_neg = true;
    EXPECT_EQ(npn_apply(0x0000, t), 0xFFFF);
    EXPECT_EQ(npn_apply(0x8888, t), 0x7777);
}

TEST(Npn, InputNegationOnProjection) {
    // f = x0 (tt 0xAAAA). Negating input 0 gives !x0 = 0x5555.
    NpnTransform t;
    t.input_neg = 0b0001;
    EXPECT_EQ(npn_apply(0xAAAA, t), 0x5555);
}

TEST(Npn, PermutationOnProjection) {
    // f = x0; applying perm that routes x1 into position 0 yields x1.
    NpnTransform t;
    t.perm = {1, 0, 2, 3};
    // g(x) = f(y) with y0 = x_{perm[0]} = x1 => g = x1 (0xCCCC).
    EXPECT_EQ(npn_apply(0xAAAA, t), 0xCCCC);
}

TEST(Npn, ApplyInvertRoundTrip) {
    bg::Rng rng(31);
    std::array<std::uint8_t, 4> perm{0, 1, 2, 3};
    std::vector<std::uint8_t> pv(perm.begin(), perm.end());
    for (int iter = 0; iter < 500; ++iter) {
        NpnTransform t;
        rng.shuffle(pv);
        std::copy(pv.begin(), pv.end(), t.perm.begin());
        t.input_neg = static_cast<std::uint8_t>(rng.next_below(16));
        t.output_neg = rng.next_bool();
        const auto f = static_cast<std::uint16_t>(rng.next_below(0x10000));
        const auto g = npn_apply(f, t);
        EXPECT_EQ(npn_apply(g, npn_invert(t)), f);
    }
}

TEST(Npn, ComposeMatchesSequentialApplication) {
    bg::Rng rng(32);
    std::vector<std::uint8_t> pv{0, 1, 2, 3};
    for (int iter = 0; iter < 500; ++iter) {
        NpnTransform a;
        NpnTransform b;
        rng.shuffle(pv);
        std::copy(pv.begin(), pv.end(), a.perm.begin());
        a.input_neg = static_cast<std::uint8_t>(rng.next_below(16));
        a.output_neg = rng.next_bool();
        rng.shuffle(pv);
        std::copy(pv.begin(), pv.end(), b.perm.begin());
        b.input_neg = static_cast<std::uint8_t>(rng.next_below(16));
        b.output_neg = rng.next_bool();
        const auto f = static_cast<std::uint16_t>(rng.next_below(0x10000));
        EXPECT_EQ(npn_apply(f, npn_compose(a, b)),
                  npn_apply(npn_apply(f, a), b));
    }
}

TEST(Npn, CanonizeIsIdempotent) {
    bg::Rng rng(33);
    for (int iter = 0; iter < 300; ++iter) {
        const auto f = static_cast<std::uint16_t>(rng.next_below(0x10000));
        const auto c = npn_canonize(f);
        EXPECT_EQ(npn_apply(f, c.to_canon), c.canon);
        const auto c2 = npn_canonize(c.canon);
        EXPECT_EQ(c2.canon, c.canon) << "canon form must be a fixed point";
    }
}

TEST(Npn, EquivalentFunctionsShareCanon) {
    bg::Rng rng(34);
    std::vector<std::uint8_t> pv{0, 1, 2, 3};
    for (int iter = 0; iter < 200; ++iter) {
        const auto f = static_cast<std::uint16_t>(rng.next_below(0x10000));
        NpnTransform t;
        rng.shuffle(pv);
        std::copy(pv.begin(), pv.end(), t.perm.begin());
        t.input_neg = static_cast<std::uint8_t>(rng.next_below(16));
        t.output_neg = rng.next_bool();
        const auto g = npn_apply(f, t);
        EXPECT_EQ(npn_canonize(f).canon, npn_canonize(g).canon)
            << "NPN-equivalent functions must canonize identically";
    }
}

TEST(Npn, ClassCountIs222) {
    // The count of NPN classes of 4-variable functions is a classic
    // combinatorial constant.
    EXPECT_EQ(bg::tt::npn_num_classes(), 222u);
}

TEST(Npn, CanonOfConstantsAndProjections) {
    EXPECT_EQ(npn_canonize(0x0000).canon, 0x0000);
    EXPECT_EQ(npn_canonize(0xFFFF).canon, 0x0000);  // complements collapse
    const auto cx0 = npn_canonize(0xAAAA).canon;
    const auto cx3 = npn_canonize(0xFF00).canon;
    EXPECT_EQ(cx0, cx3) << "all projections are NPN-equivalent";
}

}  // namespace
