#include <gtest/gtest.h>

#include "opt/mffc.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::mffc;

TEST(Mffc, SingleNodeCone) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    const auto res = mffc(g, lit_var(x));
    EXPECT_EQ(res.size(), 1);
    EXPECT_TRUE(res.contains(lit_var(x)));
}

TEST(Mffc, ChainIsFullyContained) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    const auto res = mffc(g, lit_var(y));
    EXPECT_EQ(res.size(), 2);
    EXPECT_TRUE(res.contains(lit_var(x)));
}

TEST(Mffc, SharedNodeExcluded) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);       // shared
    const Lit y = g.and_(x, c);
    const Lit z = g.and_(x, lit_not(c));
    g.add_po(y);
    g.add_po(z);
    EXPECT_EQ(mffc(g, lit_var(y)).size(), 1);
    EXPECT_EQ(mffc(g, lit_var(z)).size(), 1);
}

TEST(Mffc, LeafBoundaryStopsRecursion) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    // With x as a leaf, the MFFC of y is just {y}.
    const std::vector<Var> leaves{lit_var(x), lit_var(c)};
    EXPECT_EQ(mffc(g, lit_var(y), leaves).size(), 1);
}

TEST(Mffc, MatchesActualDeletion) {
    // Property: |MFFC(v)| (unbounded) equals the number of AND nodes that
    // die when v's last reference disappears.
    for (std::uint64_t seed : {3ULL, 7ULL, 13ULL, 29ULL}) {
        auto g = bg::test::random_aig(8, 60, 0, seed);
        // Give every node except our target a PO? No: pick a node with no
        // fanout references (a dangling root) and measure deletion.
        const auto ands = g.topo_ands();
        ASSERT_FALSE(ands.empty());
        // Find roots (ref == 0).
        for (const Var v : ands) {
            if (g.ref_count(v) != 0) {
                continue;
            }
            const auto predicted = mffc(g, v);
            const auto before = g.num_ands();
            Aig copy = g;
            copy.delete_unreferenced(v);
            const auto died =
                static_cast<int>(before) - static_cast<int>(copy.num_ands());
            EXPECT_EQ(predicted.size(), died) << "seed " << seed;
        }
    }
}

TEST(Mffc, RootFirstInNodeList) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, lit_not(b));
    g.add_po(y);
    const auto res = mffc(g, lit_var(y));
    ASSERT_FALSE(res.nodes.empty());
    EXPECT_EQ(res.nodes.front(), lit_var(y));
}

TEST(Mffc, RootAsLeafThrows) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    const std::vector<Var> leaves{lit_var(x)};
    EXPECT_THROW((void)mffc(g, lit_var(x), leaves), bg::ContractViolation);
}

}  // namespace
