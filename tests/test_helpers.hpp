#pragma once

/// Shared helpers for the optimization-layer tests: constructing AIGs with
/// *semantic* redundancy (structural hashing cannot see it) so rewrite /
/// resub / refactor have something real to find.

#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace bg::test {

using aig::Aig;
using aig::Lit;
using aig::lit_not;
using aig::lit_not_cond;

/// Random structurally-hashed AIG (little redundancy; baseline graphs).
inline Aig random_aig(unsigned num_pis, int num_nodes, unsigned num_pos,
                      std::uint64_t seed) {
    bg::Rng rng(seed);
    Aig g;
    const auto pis = g.add_pis(num_pis);
    std::vector<Lit> pool(pis.begin(), pis.end());
    for (int k = 0; k < num_nodes; ++k) {
        const Lit u =
            lit_not_cond(pool[rng.next_below(pool.size())], rng.next_bool());
        const Lit v =
            lit_not_cond(pool[rng.next_below(pool.size())], rng.next_bool());
        pool.push_back(g.and_(u, v));
    }
    for (unsigned k = 0; k < num_pos; ++k) {
        g.add_po(lit_not_cond(pool[pool.size() - 1 - k], (k & 1) != 0));
    }
    return g;
}

/// AIG with planted semantic redundancy:
///  * muxes with agreeing branches   (rw/rf food: f = xa + !xa == a)
///  * distributed products            (rf food: ab + ac vs a(b+c))
///  * re-derived signals              (rs food: two cones computing equal
///                                     functions through different shapes)
inline Aig redundant_aig(unsigned num_pis, int rounds, unsigned num_pos,
                         std::uint64_t seed) {
    bg::Rng rng(seed);
    Aig g;
    const auto pis = g.add_pis(num_pis);
    std::vector<Lit> pool(pis.begin(), pis.end());
    const auto pick = [&] {
        return lit_not_cond(pool[rng.next_below(pool.size())],
                            rng.next_bool());
    };
    for (int k = 0; k < rounds; ++k) {
        switch (rng.next_below(4)) {
            case 0: {  // mux with equal data inputs: c?a:a == a
                const Lit c = pick();
                const Lit a = pick();
                pool.push_back(g.or_(g.and_(c, a), g.and_(lit_not(c), a)));
                break;
            }
            case 1: {  // distributed product ab + ac (factorable)
                const Lit a = pick();
                const Lit b = pick();
                const Lit c = pick();
                pool.push_back(g.or_(g.and_(a, b), g.and_(a, c)));
                break;
            }
            case 2: {  // re-derived: (a&b)&c and a&(b&c) (strash-distinct)
                const Lit a = pick();
                const Lit b = pick();
                const Lit c = pick();
                const Lit left = g.and_(g.and_(a, b), c);
                const Lit right = g.and_(a, g.and_(b, c));
                pool.push_back(g.or_(g.and_(left, pick()), right));
                break;
            }
            default: {  // plain node to keep the graph growing
                pool.push_back(g.and_(pick(), pick()));
                break;
            }
        }
    }
    for (unsigned k = 0; k < num_pos && k < pool.size(); ++k) {
        g.add_po(lit_not_cond(pool[pool.size() - 1 - k], (k & 1) != 0));
    }
    return g;
}

}  // namespace bg::test
