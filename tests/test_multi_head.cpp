#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/flow.hpp"
#include "core/flow_engine.hpp"
#include "core/model.hpp"
#include "core/sampling.hpp"
#include "core/trainer.hpp"
#include "nn/loss.hpp"
#include "opt/objective.hpp"
#include "util/contracts.hpp"

/// \file test_multi_head.cpp
/// The multi-head predictor: shared-trunk size/depth/LUT heads, masked
/// multi-label training, versioned checkpoints (v1 single-head files load
/// as size-only, bit-exact), and head-selected ranking in the flow — the
/// depth objective must prune by the depth head when the model has one
/// and fall back to size-as-proxy when it does not.

namespace {

using namespace bg::core;  // NOLINT: test brevity
using bg::aig::Aig;
namespace nn = bg::nn;

ModelConfig tiny_config(std::vector<MetricHead> heads = {MetricHead::Size}) {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 11;
    cfg.heads = std::move(heads);
    return cfg;
}

std::vector<MetricHead> all_heads() {
    return {MetricHead::Size, MetricHead::Depth, MetricHead::Luts};
}

Dataset tiny_dataset(std::size_t num_samples = 24, std::uint64_t seed = 3,
                     bool with_luts = false) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    bg::opt::LutMapParams lut;
    lut.k = 4;
    const auto records = generate_guided_samples(
        g, num_samples, seed, {}, nullptr, with_luts ? &lut : nullptr);
    return build_dataset(g, records);
}

std::string file_magic(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    in.read(magic, sizeof magic);
    return std::string(magic, 8);
}

// -- configuration -----------------------------------------------------------

TEST(MultiHead, ConfigValidation) {
    EXPECT_THROW(BoolGebraModel{tiny_config({})}, bg::ContractViolation)
        << "a model needs at least one head";
    EXPECT_THROW(
        BoolGebraModel{tiny_config({MetricHead::Size, MetricHead::Size})},
        bg::ContractViolation)
        << "duplicate heads must be rejected";
    EXPECT_THROW(BoolGebraModel{tiny_config({MetricHead::Depth})},
                 bg::ContractViolation)
        << "the size head (the ranking fallback) is mandatory";
    EXPECT_NO_THROW(BoolGebraModel{tiny_config(all_heads())});
}

TEST(MultiHead, HeadLookup) {
    const BoolGebraModel model(
        tiny_config({MetricHead::Size, MetricHead::Depth}));
    EXPECT_EQ(model.num_heads(), 2u);
    EXPECT_TRUE(model.has_head(MetricHead::Size));
    EXPECT_TRUE(model.has_head(MetricHead::Depth));
    EXPECT_FALSE(model.has_head(MetricHead::Luts));
    EXPECT_EQ(model.head_index(MetricHead::Depth), 1u);
    EXPECT_EQ(model.head_index(MetricHead::Luts), std::nullopt);
}

TEST(MultiHead, QuickMultiConfigCarriesAllHeads) {
    const auto cfg = ModelConfig::quick_multi();
    EXPECT_EQ(cfg.heads, all_heads());
    // The single-head default is unchanged — the paper's architecture.
    EXPECT_EQ(ModelConfig::quick().heads,
              std::vector<MetricHead>{MetricHead::Size});
}

// -- inference ---------------------------------------------------------------

TEST(MultiHead, ForwardIsOneColumnPerHead) {
    const Dataset ds = tiny_dataset(4);
    BoolGebraModel model(tiny_config(all_heads()));
    nn::Matrix x(2 * ds.num_nodes(), feature_dim);
    for (std::size_t s = 0; s < 2; ++s) {
        const auto& feats = ds.samples()[s].features;
        std::copy(feats.begin(), feats.end(), x.row(s * ds.num_nodes()));
    }
    const auto pred = model.forward(x, ds.csr(), 2, /*train=*/false);
    EXPECT_EQ(pred.rows(), 2u);
    EXPECT_EQ(pred.cols(), 3u);
    for (std::size_t s = 0; s < pred.rows(); ++s) {
        for (std::size_t h = 0; h < pred.cols(); ++h) {
            EXPECT_GE(pred.at(s, h), 0.0F);
            EXPECT_LE(pred.at(s, h), 1.0F);
        }
    }
}

TEST(MultiHead, PredictBatchHeadSelectsColumns) {
    const Dataset ds = tiny_dataset(6);
    const BoolGebraModel model(tiny_config(all_heads()));
    nn::Matrix stacked(6 * ds.num_nodes(), feature_dim);
    for (std::size_t s = 0; s < 6; ++s) {
        const auto& feats = ds.samples()[s].features;
        std::copy(feats.begin(), feats.end(),
                  stacked.row(s * ds.num_nodes()));
    }
    const auto head0 =
        model.predict_batch_head(ds.csr(), ds.num_nodes(), stacked, 0);
    const auto head1 =
        model.predict_batch_head(ds.csr(), ds.num_nodes(), stacked, 1);
    // predict_batch is the first head's column bit for bit.
    EXPECT_EQ(model.predict_batch(ds.csr(), ds.num_nodes(), stacked), head0);
    // Distinct output columns carry distinct final-layer weights.
    EXPECT_NE(head0, head1);

    // Blend = manual weighted combination of the head columns.
    const std::vector<double> weights{1.0, 2.0, 0.0};
    const auto blend = model.predict_batch_blend(ds.csr(), ds.num_nodes(),
                                                 stacked, weights);
    ASSERT_EQ(blend.size(), head0.size());
    for (std::size_t s = 0; s < blend.size(); ++s) {
        EXPECT_DOUBLE_EQ(blend[s], 1.0 * head0[s] + 2.0 * head1[s]);
    }
}

// -- masked multi-label loss -------------------------------------------------

TEST(MaskedLoss, EqualsUnmaskedMseOnSingleColumn) {
    nn::Matrix pred(5, 1);
    nn::Matrix target(5, 1);
    nn::Matrix mask(5, 1);
    std::vector<float> flat_target(5);
    for (std::size_t i = 0; i < 5; ++i) {
        pred.at(i, 0) = 0.1F * static_cast<float>(i + 1);
        target.at(i, 0) = 0.7F - 0.2F * static_cast<float>(i);
        flat_target[i] = target.at(i, 0);
        mask.at(i, 0) = 1.0F;
    }
    const auto masked = nn::masked_mse_loss(pred, target, mask);
    const auto plain = nn::mse_loss(pred, flat_target);
    EXPECT_EQ(masked.loss, plain.loss);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(masked.grad.at(i, 0), plain.grad.at(i, 0));
    }
}

TEST(MaskedLoss, MaskedEntriesContributeNothing) {
    nn::Matrix pred(3, 2);
    nn::Matrix target(3, 2);
    nn::Matrix mask(3, 2);
    for (std::size_t i = 0; i < 3; ++i) {
        pred.at(i, 0) = 0.5F;
        target.at(i, 0) = 0.25F;
        mask.at(i, 0) = 1.0F;
        pred.at(i, 1) = 0.9F;   // wildly wrong ...
        target.at(i, 1) = 0.0F;
        mask.at(i, 1) = 0.0F;   // ... but masked out
    }
    const auto res = nn::masked_mse_loss(pred, target, mask);
    EXPECT_DOUBLE_EQ(res.loss, 0.25 * 0.25);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(res.grad.at(i, 1), 0.0F)
            << "masked entries must not produce gradient";
        EXPECT_NE(res.grad.at(i, 0), 0.0F);
    }
    const auto per_col = nn::masked_mse_per_column(pred, target, mask);
    ASSERT_EQ(per_col.size(), 2u);
    EXPECT_DOUBLE_EQ(per_col[0], 0.25 * 0.25);
    EXPECT_DOUBLE_EQ(per_col[1], 0.0);
}

TEST(MaskedLoss, AllZeroMaskIsZeroLossZeroGrad) {
    nn::Matrix pred(2, 3);
    nn::Matrix target(2, 3);
    nn::Matrix mask(2, 3);  // zero-initialized
    pred.at(0, 0) = 1.0F;
    const auto res = nn::masked_mse_loss(pred, target, mask);
    EXPECT_EQ(res.loss, 0.0);
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(res.grad.at(i, j), 0.0F);
        }
    }
    EXPECT_EQ(nn::masked_mse_value(pred, target, mask), 0.0);
}

// -- dataset labels ----------------------------------------------------------

TEST(MultiHeadDataset, LabelsAndMasksWithoutLutMeasurements) {
    const Dataset ds = tiny_dataset(12, 5, /*with_luts=*/false);
    constexpr auto kSize = static_cast<std::size_t>(MetricHead::Size);
    constexpr auto kDepth = static_cast<std::size_t>(MetricHead::Depth);
    constexpr auto kLuts = static_cast<std::size_t>(MetricHead::Luts);
    EXPECT_TRUE(ds.has_labels(MetricHead::Size));
    EXPECT_TRUE(ds.has_labels(MetricHead::Depth));
    EXPECT_FALSE(ds.has_labels(MetricHead::Luts));
    bool some_depth_signal = false;
    for (const auto& s : ds.samples()) {
        EXPECT_EQ(s.labels[kSize], s.label)
            << "the size column is the paper's label";
        EXPECT_EQ(s.mask[kSize], 1.0F);
        EXPECT_EQ(s.mask[kDepth], 1.0F);
        EXPECT_EQ(s.mask[kLuts], 0.0F)
            << "unmeasured LUT labels must be masked out";
        EXPECT_GE(s.labels[kDepth], 0.0F);
        EXPECT_LE(s.labels[kDepth], 1.0F);
        some_depth_signal |= s.labels[kDepth] > 0.0F;
    }
    EXPECT_TRUE(some_depth_signal)
        << "range normalization should separate the depth outcomes";
}

TEST(MultiHeadDataset, LutLabelsWhenMeasured) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    bg::opt::LutMapParams lut;
    lut.k = 4;
    const auto records = generate_guided_samples(g, 8, 3, {}, nullptr, &lut);
    for (const auto& rec : records) {
        EXPECT_GE(rec.lut_count, 0)
            << "lut_labels must annotate every record";
    }
    const Dataset ds = build_dataset(g, records);
    EXPECT_TRUE(ds.has_labels(MetricHead::Luts));
    constexpr auto kLuts = static_cast<std::size_t>(MetricHead::Luts);
    for (const auto& s : ds.samples()) {
        EXPECT_EQ(s.mask[kLuts], 1.0F);
        EXPECT_GE(s.labels[kLuts], 0.0F);
        EXPECT_LE(s.labels[kLuts], 1.0F);
    }
}

TEST(MultiHeadDataset, RangeLabelNormalization) {
    EXPECT_FLOAT_EQ(range_label(5.0, 5.0, 9.0), 0.0F);
    EXPECT_FLOAT_EQ(range_label(9.0, 5.0, 9.0), 1.0F);
    EXPECT_FLOAT_EQ(range_label(7.0, 5.0, 9.0), 0.5F);
    EXPECT_FLOAT_EQ(range_label(5.0, 5.0, 5.0), 0.0F)
        << "degenerate range collapses to 0";
}

// -- training ----------------------------------------------------------------

TEST(MultiHeadTrainer, LossDecreasesOnAllThreeHeads) {
    const Dataset ds = tiny_dataset(32, 5, /*with_luts=*/true);
    BoolGebraModel model(tiny_config(all_heads()));
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 30;
    cfg.batch_size = 8;
    cfg.eval_every = 1;
    const auto result = train_model(model, ds, cfg);
    ASSERT_GE(result.history.size(), 2u);
    EXPECT_LT(result.final_train_loss, result.history.front().train_loss);

    const auto head_losses = evaluate_head_losses(model, ds,
                                                  result.split.test);
    ASSERT_EQ(head_losses.size(), 3u);
    for (const double l : head_losses) {
        EXPECT_GE(l, 0.0);
    }
}

TEST(MultiHeadTrainer, MaskedLutColumnGetsNoGradient) {
    // Dataset without LUT measurements: the LUT head's column is fully
    // masked, so the final linear layer's LUT column must accumulate a
    // zero gradient while the labelled columns do not.
    const Dataset ds = tiny_dataset(8, 6, /*with_luts=*/false);
    BoolGebraModel model(tiny_config(all_heads()));
    const std::size_t b = 4;
    nn::Matrix x(b * ds.num_nodes(), feature_dim);
    nn::Matrix labels(b, 3);
    nn::Matrix mask(b, 3);
    for (std::size_t s = 0; s < b; ++s) {
        const auto& sample = ds.samples()[s];
        std::copy(sample.features.begin(), sample.features.end(),
                  x.row(s * ds.num_nodes()));
        for (std::size_t h = 0; h < 3; ++h) {
            labels.at(s, h) = sample.labels[h];
            mask.at(s, h) = sample.mask[h];
        }
    }
    model.zero_grad();
    const auto pred = model.forward(x, ds.csr(), b, /*train=*/true);
    const auto loss = nn::masked_mse_loss(pred, labels, mask);
    model.backward(loss.grad);

    // The final linear layer is the only parameter tensor of size 8*3
    // (weights) / 3 (bias) in the tiny architecture; column 2 is the LUT
    // head.
    const nn::ParamRef* l2_w = nullptr;
    const nn::ParamRef* l2_b = nullptr;
    const auto params = model.params();
    for (const auto& p : params) {
        if (p.size == 8 * 3) {
            l2_w = &p;
        } else if (p.size == 3) {
            l2_b = &p;
        }
    }
    ASSERT_NE(l2_w, nullptr);
    ASSERT_NE(l2_b, nullptr);
    bool size_col_has_grad = false;
    for (std::size_t r = 0; r < 8; ++r) {
        EXPECT_EQ(l2_w->grad[r * 3 + 2], 0.0F)
            << "masked LUT column must not receive weight gradient";
        size_col_has_grad |= l2_w->grad[r * 3 + 0] != 0.0F;
    }
    EXPECT_EQ(l2_b->grad[2], 0.0F);
    EXPECT_TRUE(size_col_has_grad)
        << "the labelled size column must still train";
}

// -- checkpoints -------------------------------------------------------------

TEST(Checkpoint, SingleHeadSavesLegacyV1Layout) {
    BoolGebraModel model(tiny_config());
    const auto path =
        std::filesystem::temp_directory_path() / "bg_v1_layout.bin";
    model.save(path);
    EXPECT_EQ(file_magic(path), "BGMODEL2")
        << "single-size-head checkpoints stay readable by v1 tooling";
    std::filesystem::remove(path);
}

TEST(Checkpoint, MultiHeadRoundTripsThroughV2) {
    const Dataset ds = tiny_dataset(4);
    BoolGebraModel a(tiny_config(all_heads()));
    const auto path =
        std::filesystem::temp_directory_path() / "bg_v2_roundtrip.bin";
    a.save(path);
    EXPECT_EQ(file_magic(path), "BGMODEL3");

    ModelConfig other = tiny_config(all_heads());
    other.seed = 999;
    BoolGebraModel b(other);
    std::vector<std::size_t> idx{0, 1, 2, 3};
    EXPECT_NE(a.predict(ds, idx), b.predict(ds, idx));
    b.load(path);
    EXPECT_EQ(a.predict(ds, idx), b.predict(ds, idx));

    // load_checkpoint restores the recorded head list.
    const auto restored = load_checkpoint(path, tiny_config());
    EXPECT_EQ(restored.num_heads(), 3u);
    EXPECT_TRUE(restored.has_head(MetricHead::Depth));
    EXPECT_EQ(restored.predict(ds, idx), a.predict(ds, idx));
    std::filesystem::remove(path);
}

TEST(Checkpoint, LegacyV1LoadsAsSizeOnlyBitExact) {
    // The backward-compatibility pin: a v1 single-head file loads as a
    // size-only model and reproduces the saving model's predictions bit
    // for bit (the PR-4 behavior).
    const Dataset ds = tiny_dataset(24, 4);
    BoolGebraModel trained(tiny_config());
    TrainConfig tc = TrainConfig::quick();
    tc.epochs = 10;
    (void)train_model(trained, ds, tc);  // fits input stats too

    const auto path =
        std::filesystem::temp_directory_path() / "bg_v1_legacy.bin";
    trained.save(path);
    ASSERT_EQ(file_magic(path), "BGMODEL2");

    // Even when the caller asks for a multi-head base config, the v1 file
    // dictates a single size head.
    const auto loaded = load_checkpoint(path, tiny_config(all_heads()));
    EXPECT_EQ(loaded.num_heads(), 1u);
    EXPECT_TRUE(loaded.has_head(MetricHead::Size));

    std::vector<std::size_t> idx(ds.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        idx[i] = i;
    }
    EXPECT_EQ(loaded.predict(ds, idx), trained.predict(ds, idx))
        << "legacy checkpoint predictions must be bit-exact";
    std::filesystem::remove(path);
}

TEST(Checkpoint, HeadMismatchIsRejectedByLoad) {
    BoolGebraModel single(tiny_config());
    const auto path =
        std::filesystem::temp_directory_path() / "bg_head_mismatch.bin";
    single.save(path);
    BoolGebraModel multi(tiny_config(all_heads()));
    EXPECT_THROW(multi.load(path), std::runtime_error)
        << "load() must not silently reinterpret a v1 file as multi-head";
    std::filesystem::remove(path);

    BoolGebraModel three(tiny_config(all_heads()));
    three.save(path);
    BoolGebraModel two(tiny_config({MetricHead::Size, MetricHead::Depth}));
    EXPECT_THROW(two.load(path), std::runtime_error);
    std::filesystem::remove(path);
}

// -- objective -> head mapping ----------------------------------------------

TEST(RankingPlanTest, ObjectiveMapsToMatchingHead) {
    const BoolGebraModel multi(tiny_config(all_heads()));
    const auto size_plan = plan_ranking(multi, *bg::opt::make_objective("size"));
    ASSERT_TRUE(size_plan.single_head.has_value());
    EXPECT_EQ(multi.heads()[*size_plan.single_head], MetricHead::Size);
    EXPECT_EQ(size_plan.describe, "size");

    const auto depth_plan =
        plan_ranking(multi, *bg::opt::make_objective("depth"));
    ASSERT_TRUE(depth_plan.single_head.has_value());
    EXPECT_EQ(multi.heads()[*depth_plan.single_head], MetricHead::Depth);
    EXPECT_EQ(depth_plan.describe, "depth");

    const auto lut_plan =
        plan_ranking(multi, *bg::opt::make_objective("luts:4"));
    ASSERT_TRUE(lut_plan.single_head.has_value());
    EXPECT_EQ(multi.heads()[*lut_plan.single_head], MetricHead::Luts);
    EXPECT_EQ(lut_plan.describe, "luts");
}

TEST(RankingPlanTest, WeightedObjectiveBlendsHeads) {
    const BoolGebraModel multi(tiny_config(all_heads()));
    const auto plan =
        plan_ranking(multi, *bg::opt::make_objective("weighted:1,2"));
    EXPECT_FALSE(plan.single_head.has_value());
    ASSERT_EQ(plan.weights.size(), 3u);
    EXPECT_DOUBLE_EQ(plan.weights[0], 1.0);
    EXPECT_DOUBLE_EQ(plan.weights[1], 2.0);
    EXPECT_DOUBLE_EQ(plan.weights[2], 0.0);
    EXPECT_EQ(plan.describe, "blend(size:1,depth:2)");
}

TEST(RankingPlanTest, MissingHeadsFallBackToSizeProxy) {
    const BoolGebraModel single(tiny_config());
    const auto depth_plan =
        plan_ranking(single, *bg::opt::make_objective("depth"));
    ASSERT_TRUE(depth_plan.single_head.has_value());
    EXPECT_EQ(*depth_plan.single_head, 0u);
    EXPECT_EQ(depth_plan.describe, "size-proxy");

    // Weighted on a single-head model degrades to the size head alone.
    const auto weighted_plan =
        plan_ranking(single, *bg::opt::make_objective("weighted:1,2"));
    ASSERT_TRUE(weighted_plan.single_head.has_value());
    EXPECT_EQ(weighted_plan.describe, "size-proxy");

    // The size objective on a single-head model is NOT a proxy.
    const auto size_plan =
        plan_ranking(single, *bg::opt::make_objective("size"));
    EXPECT_EQ(size_plan.describe, "size");
}

TEST(RankingPlanTest, OverrideShortCircuitsTheObjective) {
    const BoolGebraModel multi(tiny_config(all_heads()));
    const auto plan = plan_ranking(multi, *bg::opt::make_objective("depth"),
                                   MetricHead::Size);
    ASSERT_TRUE(plan.single_head.has_value());
    EXPECT_EQ(multi.heads()[*plan.single_head], MetricHead::Size);
    EXPECT_EQ(plan.describe, "size");

    const BoolGebraModel single(tiny_config());
    const auto fallback = plan_ranking(
        single, *bg::opt::make_objective("size"), MetricHead::Luts);
    EXPECT_EQ(fallback.describe, "size-proxy");
}

// -- flows -------------------------------------------------------------------

FlowConfig quick_flow_config() {
    FlowConfig fc;
    fc.num_samples = 24;
    fc.top_k = 6;
    fc.seed = 5;
    return fc;
}

TEST(MultiHeadFlow, RankedByThreadsThroughFlowResult) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.3);
    const BoolGebraModel multi(tiny_config(all_heads()));
    FlowConfig fc = quick_flow_config();
    fc.objective = bg::opt::make_objective("depth");
    const auto depth_run = run_flow(g, multi, fc);
    EXPECT_EQ(depth_run.ranked_by, "depth");

    FlowConfig proxy_cfg = fc;
    proxy_cfg.ranking_head = MetricHead::Size;
    const auto proxy_run = run_flow(g, multi, proxy_cfg);
    EXPECT_EQ(proxy_run.ranked_by, "size");
    // Distinct heads rank distinctly on an (untrained) multi-head model.
    EXPECT_NE(depth_run.predictions, proxy_run.predictions);

    const BoolGebraModel single(tiny_config());
    const auto legacy_run = run_flow(g, single, fc);
    EXPECT_EQ(legacy_run.ranked_by, "size-proxy");
}

TEST(MultiHeadFlow, EngineReportsRankingHead) {
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.flow = quick_flow_config();
    cfg.flow.objective = bg::opt::make_objective("depth");
    FlowEngine engine(cfg);
    const BoolGebraModel multi(tiny_config(all_heads()));
    const auto jobs =
        jobs_from_registry(std::vector<std::string>{"b07"}, 0.3);
    const auto batch = engine.run(jobs, multi);
    EXPECT_EQ(batch.objective, "depth");
    EXPECT_EQ(batch.ranked_by, "depth");
    ASSERT_EQ(batch.designs.size(), 1u);
    EXPECT_EQ(batch.designs[0].flow.ranked_by, "depth");
}

/// The acceptance pin: a depth-objective flow that ranks with a trained
/// depth head must do at least as well on the BG-Best depth ratio as the
/// same flow forced onto the size head (the PR-4 size-as-proxy baseline).
/// Everything is seeded, so this is a deterministic regression test, per
/// design, across three registry designs.
TEST(MultiHeadFlow, DepthHeadMatchesOrBeatsSizeProxyOnRegistryDesigns) {
    bg::opt::LutMapParams lut;
    lut.k = 4;
    for (const char* name : {"b07", "b09", "b10"}) {
        const Aig g = bg::circuits::make_benchmark_scaled(name, 0.3);
        // Design-specific training (the paper's Fig 5 setup) on guided
        // samples with all three labels.
        const auto records =
            generate_guided_samples(g, 48, 17, {}, nullptr, &lut);
        const Dataset ds = build_dataset(g, records);
        ModelConfig mc = tiny_config(all_heads());
        mc.seed = 23;
        BoolGebraModel model(mc);
        TrainConfig tc = TrainConfig::quick();
        tc.epochs = 40;
        tc.batch_size = 12;
        tc.seed = 9;
        (void)train_model(model, ds, tc);

        FlowConfig fc = quick_flow_config();
        fc.num_samples = 40;
        fc.top_k = 8;
        fc.objective = bg::opt::make_objective("depth");

        const auto by_depth_head = run_flow(g, model, fc);
        ASSERT_EQ(by_depth_head.ranked_by, "depth") << name;

        FlowConfig proxy = fc;
        proxy.ranking_head = MetricHead::Size;
        const auto by_size_proxy = run_flow(g, model, proxy);
        ASSERT_EQ(by_size_proxy.ranked_by, "size") << name;

        EXPECT_LE(by_depth_head.bg_best_depth_ratio,
                  by_size_proxy.bg_best_depth_ratio + 1e-12)
            << name << ": ranking by the depth head must not lose depth "
                       "against the size-as-proxy baseline";
    }
}

}  // namespace
