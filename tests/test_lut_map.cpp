#include <gtest/gtest.h>

#include <unordered_map>

#include "aig/simulation.hpp"
#include "circuits/generators.hpp"
#include "opt/lut_map.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::LutMapParams;
using bg::opt::LutMapping;
using bg::opt::map_to_luts;

/// Evaluate the LUT network bit-by-bit and compare against AIG
/// simulation — the functional-correctness oracle for the mapper.
void verify_mapping(const Aig& g, const LutMapping& m) {
    ASSERT_LE(g.num_pis(), 12u);
    const auto pats = exhaustive_patterns(g.num_pis());
    const auto sims = simulate(g, pats);

    // LUT outputs by root var, evaluated in topological order (mapping
    // roots follow AIG order after sorting by var id — fanins of a cut
    // always have smaller mapped level, but var order is a safe proxy
    // only after sorting; evaluate by fixpoint instead).
    std::unordered_map<Var, std::vector<std::uint64_t>> value;
    value[0] = std::vector<std::uint64_t>(sims[0].size(), 0);
    for (std::size_t i = 0; i < g.num_pis(); ++i) {
        value[g.pi(i)] = pats[i];
    }
    std::vector<const bg::opt::Lut*> pending;
    for (const auto& lut : m.luts) {
        pending.push_back(&lut);
    }
    while (!pending.empty()) {
        bool progressed = false;
        std::vector<const bg::opt::Lut*> next;
        for (const auto* lut : pending) {
            bool ready = true;
            for (const Var leaf : lut->leaves) {
                if (!value.contains(leaf)) {
                    ready = false;
                    break;
                }
            }
            if (!ready) {
                next.push_back(lut);
                continue;
            }
            progressed = true;
            const std::size_t words = pats.empty() ? 1 : pats[0].size();
            std::vector<std::uint64_t> out(words, 0);
            for (std::size_t w = 0; w < words; ++w) {
                for (unsigned bit = 0; bit < 64; ++bit) {
                    std::uint64_t idx = 0;
                    for (std::size_t l = 0; l < lut->leaves.size(); ++l) {
                        const bool lv =
                            (value.at(lut->leaves[l])[w] >> bit) & 1;
                        idx |= static_cast<std::uint64_t>(lv) << l;
                    }
                    if (lut->function.get_bit(idx)) {
                        out[w] |= 1ULL << bit;
                    }
                }
            }
            value[lut->root] = std::move(out);
        }
        ASSERT_TRUE(progressed) << "LUT cover contains a dependency cycle";
        pending = std::move(next);
    }
    // Every LUT root must agree with the AIG simulation.
    for (const auto& lut : m.luts) {
        ASSERT_EQ(value.at(lut.root), sims[lut.root])
            << "LUT at var " << lut.root << " mis-evaluates";
    }
}

TEST(LutMap, SingleGate) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(g.and_(a, b));
    const auto m = map_to_luts(g, {.k = 4, .max_cuts = 8});
    EXPECT_EQ(m.num_luts(), 1u);
    EXPECT_EQ(m.depth, 1u);
    verify_mapping(g, m);
}

TEST(LutMap, WideAndTreeCollapsesIntoFewLuts) {
    Aig g;
    const auto pis = g.add_pis(8);
    g.add_po(g.and_reduce(pis));  // 7 AND gates
    const auto m6 = map_to_luts(g, {.k = 6, .max_cuts = 10});
    EXPECT_LE(m6.num_luts(), 3u);
    EXPECT_LE(m6.depth, 2u);
    verify_mapping(g, m6);

    const auto m2 = map_to_luts(g, {.k = 2, .max_cuts = 10});
    EXPECT_EQ(m2.num_luts(), 7u) << "k=2 LUTs are just AND gates";
    verify_mapping(g, m2);
}

TEST(LutMap, DepthDecreasesWithLargerK) {
    const Aig g = bg::test::redundant_aig(10, 60, 4, 5);
    std::uint32_t last_depth = 0xFFFFFFFF;
    for (const unsigned k : {2u, 4u, 6u}) {
        const auto m = map_to_luts(g, {.k = k, .max_cuts = 10});
        EXPECT_LE(m.depth, last_depth) << "k=" << k;
        last_depth = m.depth;
        verify_mapping(g, m);
    }
}

TEST(LutMap, CoverIsComplete) {
    // Every PO must be driven by a mapped root / PI / constant, and every
    // LUT leaf must itself be covered.
    const Aig g = bg::test::redundant_aig(9, 50, 4, 9);
    const auto m = map_to_luts(g, {.k = 5, .max_cuts = 8});
    std::unordered_map<Var, bool> is_root;
    for (const auto& lut : m.luts) {
        is_root[lut.root] = true;
    }
    for (const Lit po : g.pos()) {
        const Var v = lit_var(po);
        EXPECT_TRUE(!g.is_and(v) || is_root[v]) << "uncovered PO driver";
    }
    for (const auto& lut : m.luts) {
        for (const Var leaf : lut.leaves) {
            EXPECT_TRUE(!g.is_and(leaf) || is_root[leaf])
                << "LUT leaf " << leaf << " is not itself mapped";
        }
        EXPECT_LE(lut.leaves.size(), 5u);
    }
    verify_mapping(g, m);
}

TEST(LutMap, FewerLutsThanAndGates) {
    const Aig g = bg::test::redundant_aig(10, 80, 5, 21);
    const auto m = map_to_luts(g, {.k = 6, .max_cuts = 10});
    EXPECT_LT(m.num_luts(), g.num_ands());
}

TEST(LutMap, GeneratedDesignsMapAndVerify) {
    bg::circuits::GeneratorParams p;
    p.num_pis = 11;
    p.target_ands = 120;
    p.seed = 31;
    const Aig g = bg::circuits::generate_circuit(p);
    const auto m = map_to_luts(g, {.k = 6, .max_cuts = 8});
    EXPECT_GT(m.num_luts(), 0u);
    EXPECT_GT(m.depth, 0u);
    verify_mapping(g, m);
}

TEST(LutMap, ParameterValidation) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(g.and_(a, b));
    EXPECT_THROW((void)map_to_luts(g, {.k = 1, .max_cuts = 4}),
                 bg::ContractViolation);
    EXPECT_THROW((void)map_to_luts(g, {.k = 9, .max_cuts = 4}),
                 bg::ContractViolation);
    EXPECT_THROW((void)map_to_luts(g, {.k = 4, .max_cuts = 0}),
                 bg::ContractViolation);
}

}  // namespace
