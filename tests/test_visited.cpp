/// \file test_visited.cpp
/// Epoch-stamped traversal scratch, with the wraparound path forced via a
/// small (uint8_t) epoch type: after the epoch cycles, stale stamps from
/// a previous cycle must never read as visited.

#include <gtest/gtest.h>

#include <cstdint>

#include "aig/visited.hpp"

namespace {

using bg::aig::BasicEpochMarks;
using bg::aig::EpochMap;
using bg::aig::EpochMarks;

TEST(EpochMarks, BasicMarkAndClear) {
    EpochMarks marks;
    marks.reset(8);
    EXPECT_FALSE(marks.test(3));
    EXPECT_TRUE(marks.insert(3));
    EXPECT_FALSE(marks.insert(3));
    EXPECT_TRUE(marks.test(3));
    marks.set(5);
    EXPECT_TRUE(marks.test(5));

    marks.reset(8);  // O(1) clear
    EXPECT_FALSE(marks.test(3));
    EXPECT_FALSE(marks.test(5));
}

TEST(EpochMarks, GrowsKeySpaceAcrossResets) {
    EpochMarks marks;
    marks.reset(4);
    marks.set(3);
    marks.reset(16);
    EXPECT_FALSE(marks.test(3));
    marks.set(15);
    EXPECT_TRUE(marks.test(15));
}

TEST(EpochMarks, WraparoundNeverResurrectsStaleStamps) {
    BasicEpochMarks<std::uint8_t> marks;

    // Walk 1 marks key 2 at epoch 1.  Then cycle the epoch all the way
    // around: 254 more resets put it at 255; the next reset wraps to 0,
    // which must zero-fill and restart at 1.
    marks.reset(8);
    marks.set(2);
    ASSERT_EQ(marks.epoch(), 1);

    for (int i = 0; i < 254; ++i) {
        marks.reset(8);
        EXPECT_FALSE(marks.test(2)) << "stale stamp visible at epoch "
                                    << static_cast<int>(marks.epoch());
    }
    ASSERT_EQ(marks.epoch(), 255);
    marks.set(6);  // stamp == 255, about to become ambiguous

    marks.reset(8);  // wraps
    EXPECT_EQ(marks.epoch(), 1);
    // Key 2 was stamped 1 in the previous cycle; without the zero-fill it
    // would now falsely read as visited at the new epoch 1.
    EXPECT_FALSE(marks.test(2));
    EXPECT_FALSE(marks.test(6));
    EXPECT_TRUE(marks.insert(2));
}

TEST(EpochMarks, ManyFullCyclesStayConsistent) {
    BasicEpochMarks<std::uint8_t> marks;
    for (int walk = 0; walk < 1000; ++walk) {
        marks.reset(4);
        const std::uint32_t key = static_cast<std::uint32_t>(walk % 4);
        EXPECT_FALSE(marks.test(key)) << "walk " << walk;
        marks.set(key);
        EXPECT_TRUE(marks.test(key));
    }
}

TEST(EpochMap, BasicSlotSemantics) {
    EpochMap<int> map;
    map.reset(8, -1);
    EXPECT_FALSE(map.contains(4));
    map.slot(4) = 7;
    EXPECT_TRUE(map.contains(4));
    EXPECT_EQ(map.at(4), 7);
    EXPECT_EQ(map.slot(5), -1);  // fresh slot starts at init

    map.reset(8, -1);
    EXPECT_FALSE(map.contains(4));
    EXPECT_EQ(map.slot(4), -1);  // stale value lazily re-initialized
}

TEST(EpochMap, WraparoundNeverResurrectsStaleValues) {
    EpochMap<int, std::uint8_t> map;
    map.reset(4, 0);
    map.slot(1) = 42;  // stamped at epoch 1
    ASSERT_EQ(map.epoch(), 1);

    for (int i = 0; i < 254; ++i) {
        map.reset(4, 0);
    }
    ASSERT_EQ(map.epoch(), 255);
    map.slot(3) = 99;

    map.reset(4, 0);  // wraps to epoch 1
    EXPECT_EQ(map.epoch(), 1);
    EXPECT_FALSE(map.contains(1));
    EXPECT_FALSE(map.contains(3));
    EXPECT_EQ(map.slot(1), 0);
}

}  // namespace
