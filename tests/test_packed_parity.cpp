#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "core/flow_engine.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

// Packed-layout parity suite: the storage redesign (packed NodeRef nodes,
// fanout arena, open-addressing strash) must leave every flow result
// bit-identical on every registry design at every worker count.  The
// sequential run_flow per design is the reference; the FlowEngine batch
// at 1/2/4 workers must reproduce it exactly — no float tolerance.

ModelConfig parity_model_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 29;
    return cfg;
}

FlowConfig parity_flow() {
    FlowConfig fc;
    fc.num_samples = 16;
    fc.top_k = 3;
    fc.seed = 5;
    return fc;
}

std::vector<DesignJob> all_registry_jobs() {
    std::vector<DesignJob> jobs;
    // Every registered design, scaled down uniformly so the whole suite
    // stays inside the smoke budget; the storage code paths (arena churn,
    // strash churn, replace cascades) are identical at any scale.
    for (const auto& name : bg::circuits::benchmark_names()) {
        jobs.push_back({name, bg::circuits::make_benchmark_scaled(name, 0.3)});
    }
    return jobs;
}

void expect_bit_identical(const FlowResult& got, const FlowResult& want) {
    EXPECT_EQ(got.original_size, want.original_size);
    EXPECT_EQ(got.predictions, want.predictions);
    EXPECT_EQ(got.selected, want.selected);
    EXPECT_EQ(got.reductions, want.reductions);
    EXPECT_EQ(got.best_reduction, want.best_reduction);
    EXPECT_EQ(got.bg_best_ratio, want.bg_best_ratio);
    EXPECT_EQ(got.bg_mean_ratio, want.bg_mean_ratio);
    EXPECT_EQ(got.best_decisions, want.best_decisions);
}

TEST(PackedParity, AllRegistryDesignsIdenticalAcrossWorkerCounts) {
    const auto jobs = all_registry_jobs();
    const BoolGebraModel model{parity_model_config()};

    std::vector<FlowResult> reference;
    for (const auto& job : jobs) {
        BoolGebraModel m(model);
        reference.push_back(run_flow(job.design, m, parity_flow()));
    }

    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        EngineConfig cfg;
        cfg.workers = workers;
        cfg.flow = parity_flow();
        FlowEngine engine(cfg);
        const auto batch = engine.run(jobs, model);
        ASSERT_EQ(batch.designs.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " design=" + jobs[i].name);
            expect_bit_identical(batch.designs[i].flow, reference[i]);
        }
    }
}

TEST(PackedParity, IteratedFlowsIdenticalAcrossWorkerCounts) {
    const auto jobs = all_registry_jobs();
    const BoolGebraModel model{parity_model_config()};

    std::vector<IteratedFlowResult> reference;
    for (const auto& job : jobs) {
        BoolGebraModel m(model);
        reference.push_back(
            run_iterated_flow(job.design, m, parity_flow(), 2));
    }

    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        EngineConfig cfg;
        cfg.workers = workers;
        cfg.rounds = 2;
        cfg.flow = parity_flow();
        FlowEngine engine(cfg);
        const auto batch = engine.run(jobs, model);
        ASSERT_EQ(batch.designs.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " design=" + jobs[i].name);
            const auto& got = batch.designs[i].iterated;
            EXPECT_EQ(got.original_size, reference[i].original_size);
            EXPECT_EQ(got.final_size, reference[i].final_size);
            EXPECT_EQ(got.final_depth, reference[i].final_depth);
            EXPECT_EQ(got.per_round_reduction,
                      reference[i].per_round_reduction);
            EXPECT_EQ(got.final_ratio, reference[i].final_ratio);
        }
    }
}

TEST(PackedParity, RegistryGraphsAuditAndFingerprintStably) {
    // The packed storage must produce structurally identical graphs on
    // repeated deterministic construction: same fingerprint, clean audit.
    for (const auto& name : bg::circuits::benchmark_names()) {
        SCOPED_TRACE(name);
        const auto g1 = bg::circuits::make_benchmark(name);
        const auto g2 = bg::circuits::make_benchmark(name);
        g1.check_integrity();
        EXPECT_EQ(bg::aig::structural_fingerprint(g1),
                  bg::aig::structural_fingerprint(g2));
    }
}

}  // namespace
