#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/flow.hpp"
#include "core/trainer.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity
using bg::aig::Aig;

ModelConfig tiny_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 41;
    return cfg;
}

BoolGebraModel trained_model(const Aig& design) {
    const auto records = generate_guided_samples(design, 32, 3);
    const auto ds = build_dataset(design, records);
    BoolGebraModel model(tiny_config());
    auto tc = TrainConfig::quick();
    tc.epochs = 20;
    tc.batch_size = 8;
    (void)train_model(model, ds, tc);
    return model;
}

TEST(IteratedFlow, BestDecisionsExposedBySingleFlow) {
    const Aig design = bg::circuits::make_benchmark_scaled("b10", 0.5);
    auto model = trained_model(design);
    FlowConfig fc;
    fc.num_samples = 30;
    fc.top_k = 5;
    fc.seed = 7;
    const auto res = run_flow(design, model, fc);
    ASSERT_FALSE(res.best_decisions.empty());
    // Re-running the winning vector must reproduce best_reduction.
    const auto rec = evaluate_decisions(design, res.best_decisions, fc.opt);
    EXPECT_EQ(rec.reduction, res.best_reduction);
}

TEST(IteratedFlow, MultipleRoundsDoNotLoseGround) {
    const Aig design = bg::circuits::make_benchmark_scaled("b10", 0.5);
    auto model = trained_model(design);
    FlowConfig fc;
    fc.num_samples = 30;
    fc.top_k = 5;
    fc.seed = 7;
    const auto one = run_iterated_flow(design, model, fc, 1);
    const auto three = run_iterated_flow(design, model, fc, 3);
    EXPECT_EQ(one.original_size, design.num_ands());
    EXPECT_LE(three.final_size, one.final_size)
        << "extra rounds must never grow the result";
    EXPECT_GE(three.rounds(), one.rounds());
    EXPECT_LE(three.final_ratio, 1.0);
}

TEST(IteratedFlow, StopsWhenNothingLeft) {
    const Aig design = bg::circuits::make_benchmark_scaled("b09", 0.4);
    auto model = trained_model(design);
    FlowConfig fc;
    fc.num_samples = 24;
    fc.top_k = 4;
    fc.seed = 11;
    const auto res = run_iterated_flow(design, model, fc, 10);
    // The loop must terminate well before 10 rounds on a small design.
    EXPECT_LT(res.rounds(), 10u);
    // Size accounting must be consistent.
    int total = 0;
    for (const int r : res.per_round_reduction) {
        EXPECT_GT(r, 0);
        total += r;
    }
    // Compaction after each commit can only shrink further.
    EXPECT_LE(res.final_size,
              res.original_size - static_cast<std::size_t>(total));
}

}  // namespace
