#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/sampling.hpp"
#include "util/stats.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity
using bg::aig::Aig;
using bg::aig::Var;
using bg::opt::OpKind;

Aig small_design() {
    return bg::circuits::make_benchmark_scaled("b10", 0.5);
}

TEST(Sampling, RandomDecisionsCoverAndNodesOnly) {
    const Aig g = small_design();
    bg::Rng rng(1);
    const auto d = random_decisions(g, rng);
    ASSERT_EQ(d.size(), g.num_slots());
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (g.is_and(v)) {
            EXPECT_NE(d[v], OpKind::None);
        } else {
            EXPECT_EQ(d[v], OpKind::None);
        }
    }
}

TEST(Sampling, RandomDecisionsUseAllThreeOps) {
    const Aig g = small_design();
    bg::Rng rng(2);
    const auto d = random_decisions(g, rng);
    std::size_t counts[3] = {0, 0, 0};
    for (const auto op : d) {
        if (op != OpKind::None) {
            ++counts[bg::opt::op_index(op)];
        }
    }
    EXPECT_GT(counts[0], 0u);
    EXPECT_GT(counts[1], 0u);
    EXPECT_GT(counts[2], 0u);
}

TEST(Sampling, PriorityRespectsApplicability) {
    const Aig g = small_design();
    const auto st = compute_static_features(g);
    bg::Rng rng(3);
    const auto d = priority_decisions(g, st, rng);
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (!g.is_and(v)) {
            continue;
        }
        // If rw is applicable the decision must be rw (highest priority).
        if (st[v][2] > 0.5F) {
            EXPECT_EQ(d[v], OpKind::Rewrite) << "node " << v;
        } else if (st[v][4] > 0.5F) {
            EXPECT_EQ(d[v], OpKind::Resub) << "node " << v;
        } else if (st[v][6] > 0.5F) {
            EXPECT_EQ(d[v], OpKind::Refactor) << "node " << v;
        }
    }
}

TEST(Sampling, MutationChangesRequestedFraction) {
    const Aig g = small_design();
    bg::Rng rng(4);
    const auto base = random_decisions(g, rng);
    std::size_t and_count = 0;
    for (Var v = 0; v < g.num_slots(); ++v) {
        and_count += g.is_and(v) ? 1 : 0;
    }
    const auto mutated = mutate_decisions(g, base, 0.5, rng);
    std::size_t touched = 0;
    for (Var v = 0; v < g.num_slots(); ++v) {
        touched += mutated[v] != base[v] ? 1 : 0;
    }
    // Re-assignment may pick the same op (1/3 of the time), so expect
    // roughly 0.5 * 2/3 of the nodes to differ.
    EXPECT_GT(touched, and_count / 5);
    EXPECT_LT(touched, and_count * 3 / 5 + 3);
}

TEST(Sampling, MutationZeroAndOneFractionEdges) {
    const Aig g = small_design();
    bg::Rng rng(5);
    const auto base = random_decisions(g, rng);
    EXPECT_EQ(mutate_decisions(g, base, 0.0, rng), base);
    EXPECT_THROW((void)mutate_decisions(g, base, 1.5, rng),
                 bg::ContractViolation);
}

TEST(Sampling, EvaluationPreservesDesignAndFunction) {
    const Aig g = small_design();
    bg::Rng rng(6);
    const auto slots = g.num_slots();
    const auto rec = evaluate_decisions(g, random_decisions(g, rng));
    EXPECT_EQ(g.num_slots(), slots) << "design must not be mutated";
    EXPECT_GE(rec.reduction, 0);
    EXPECT_EQ(rec.final_size, g.num_ands() - static_cast<std::size_t>(rec.reduction));
}

TEST(Sampling, GuidedBeatsRandomOnAverage) {
    // Fig 2's claim: the guided distribution is shifted toward better
    // quality (smaller final size / larger reduction).
    const Aig g = small_design();
    const auto random = generate_random_samples(g, 24, 7);
    const auto guided = generate_guided_samples(g, 24, 7);
    std::vector<double> rr;
    std::vector<double> gr;
    for (const auto& s : random) {
        rr.push_back(s.reduction);
    }
    for (const auto& s : guided) {
        gr.push_back(s.reduction);
    }
    EXPECT_GT(bg::mean(gr), bg::mean(rr))
        << "guided sampling must improve average reduction";
}

TEST(Sampling, SamplesAreDeterministicPerSeed) {
    const Aig g = small_design();
    const auto a = generate_random_samples(g, 5, 99);
    const auto b = generate_random_samples(g, 5, 99);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].reduction, b[i].reduction);
        EXPECT_EQ(a[i].decisions, b[i].decisions);
    }
}

TEST(Dataset, LabelsNormalizedToBest) {
    EXPECT_FLOAT_EQ(normalize_label(3, 3), 0.0F);
    EXPECT_FLOAT_EQ(normalize_label(1, 3), 2.0F / 3.0F);
    EXPECT_FLOAT_EQ(normalize_label(0, 3), 1.0F);
    EXPECT_FLOAT_EQ(normalize_label(0, 0), 0.0F);  // degenerate
}

TEST(Dataset, BuildAndSplit) {
    const Aig g = small_design();
    const auto records = generate_guided_samples(g, 20, 3);
    const auto ds = build_dataset(g, records);
    EXPECT_EQ(ds.size(), 20u);
    EXPECT_EQ(ds.num_nodes(), g.num_slots());
    int best = 0;
    for (const auto& r : records) {
        best = std::max(best, r.reduction);
    }
    EXPECT_EQ(ds.best_reduction(), best);
    // Exactly one sample per record, labels in [0, 1], best label == 0.
    float min_label = 1.0F;
    for (const auto& s : ds.samples()) {
        EXPECT_GE(s.label, 0.0F);
        EXPECT_LE(s.label, 1.0F);
        min_label = std::min(min_label, s.label);
    }
    EXPECT_FLOAT_EQ(min_label, 0.0F);

    const auto split = ds.split(0.75, 1);
    EXPECT_EQ(split.train.size(), 15u);
    EXPECT_EQ(split.test.size(), 5u);
}

TEST(Dataset, FeatureWidthMatchesModelContract) {
    const Aig g = small_design();
    const auto records = generate_guided_samples(g, 3, 4);
    const auto ds = build_dataset(g, records);
    for (const auto& s : ds.samples()) {
        EXPECT_EQ(s.features.size(), ds.num_nodes() * feature_dim);
    }
}

}  // namespace
