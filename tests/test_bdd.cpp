#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "bdd/cec_bdd.hpp"
#include "circuits/registry.hpp"
#include "opt/orchestrate.hpp"
#include "opt/standalone.hpp"
#include "sat/cec_sat.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::bdd;  // NOLINT: test brevity
using bg::aig::Aig;
using bg::aig::CecVerdict;
using Ref = BddManager::Ref;

TEST(Bdd, TerminalsAndVars) {
    BddManager mgr(3);
    EXPECT_EQ(BddManager::bdd_false, 0u);
    EXPECT_EQ(BddManager::bdd_true, 1u);
    const Ref x0 = mgr.var(0);
    EXPECT_EQ(mgr.var(0), x0) << "unique table must canonicalize";
    EXPECT_NE(mgr.var(1), x0);
    EXPECT_THROW((void)mgr.var(3), bg::ContractViolation);
}

TEST(Bdd, BooleanLawsCanonical) {
    BddManager mgr(4);
    const Ref a = mgr.var(0);
    const Ref b = mgr.var(1);
    const Ref c = mgr.var(2);
    EXPECT_EQ(mgr.and_(a, b), mgr.and_(b, a));
    EXPECT_EQ(mgr.or_(a, mgr.and_(a, b)), a);  // absorption
    EXPECT_EQ(mgr.and_(a, mgr.not_(a)), BddManager::bdd_false);
    EXPECT_EQ(mgr.or_(a, mgr.not_(a)), BddManager::bdd_true);
    EXPECT_EQ(mgr.not_(mgr.not_(c)), c);
    EXPECT_EQ(mgr.xor_(a, a), BddManager::bdd_false);
    // De Morgan, canonically.
    EXPECT_EQ(mgr.not_(mgr.and_(a, b)),
              mgr.or_(mgr.not_(a), mgr.not_(b)));
    // Distributivity.
    EXPECT_EQ(mgr.and_(a, mgr.or_(b, c)),
              mgr.or_(mgr.and_(a, b), mgr.and_(a, c)));
}

TEST(Bdd, EvaluateMatchesSemantics) {
    BddManager mgr(3);
    const Ref f = mgr.or_(mgr.and_(mgr.var(0), mgr.var(1)),
                          mgr.not_(mgr.var(2)));
    for (unsigned m = 0; m < 8; ++m) {
        const bool a = m & 1;
        const bool b = (m >> 1) & 1;
        const bool c = (m >> 2) & 1;
        EXPECT_EQ(mgr.evaluate(f, {a, b, c}), (a && b) || !c) << m;
    }
}

TEST(Bdd, MintermCounting) {
    BddManager mgr(4);
    EXPECT_DOUBLE_EQ(mgr.count_minterms(BddManager::bdd_false), 0.0);
    EXPECT_DOUBLE_EQ(mgr.count_minterms(BddManager::bdd_true), 16.0);
    EXPECT_DOUBLE_EQ(mgr.count_minterms(mgr.var(0)), 8.0);
    EXPECT_DOUBLE_EQ(mgr.count_minterms(mgr.var(3)), 8.0);
    EXPECT_DOUBLE_EQ(
        mgr.count_minterms(mgr.and_(mgr.var(0), mgr.var(1))), 4.0);
    // Parity of 4 variables: exactly half the space.
    Ref parity = mgr.var(0);
    for (unsigned i = 1; i < 4; ++i) {
        parity = mgr.xor_(parity, mgr.var(i));
    }
    EXPECT_DOUBLE_EQ(mgr.count_minterms(parity), 8.0);
}

TEST(Bdd, SizeOfCountsReachableNodes) {
    BddManager mgr(8);
    Ref parity = mgr.var(0);
    for (unsigned i = 1; i < 8; ++i) {
        parity = mgr.xor_(parity, mgr.var(i));
    }
    // Parity BDD has 2 internal nodes per level except the last.
    EXPECT_EQ(mgr.size_of(parity), 2u * 8 - 1);
    EXPECT_EQ(mgr.size_of(BddManager::bdd_true), 0u);
}

TEST(Bdd, OverflowThrowsAndCecDegrades) {
    // A tiny node budget must overflow on a multiplier-ish function.
    Aig g;
    const auto pis = g.add_pis(16);
    bg::Rng rng(3);
    std::vector<bg::aig::Lit> pool(pis.begin(), pis.end());
    for (int i = 0; i < 200; ++i) {
        const auto a = bg::aig::lit_not_cond(
            pool[rng.next_below(pool.size())], rng.next_bool());
        const auto b = bg::aig::lit_not_cond(
            pool[rng.next_below(pool.size())], rng.next_bool());
        pool.push_back(g.xor_(a, b));
    }
    g.add_po(pool.back());
    BddCecOptions tiny;
    tiny.node_limit = 64;
    EXPECT_EQ(check_equivalence_bdd(g, g, tiny),
              CecVerdict::ProbablyEquivalent)
        << "overflow must degrade, not crash";
}

TEST(BddCec, ProvesOptimizationOnWideDesigns) {
    const Aig original = bg::circuits::make_benchmark_scaled("b07", 0.5);
    ASSERT_GT(original.num_pis(), 14u);
    Aig g = original;
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Rewrite);
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Refactor);
    EXPECT_EQ(check_equivalence_bdd(original, g), CecVerdict::Equivalent);
}

TEST(BddCec, DetectsInequivalence) {
    Aig g;
    {
        const auto a = g.add_pi();
        const auto b = g.add_pi();
        g.add_po(g.and_(a, b));
    }
    Aig h;
    {
        const auto a = h.add_pi();
        const auto b = h.add_pi();
        h.add_po(h.or_(a, b));
    }
    EXPECT_EQ(check_equivalence_bdd(g, h), CecVerdict::NotEquivalent);
}

TEST(BddCec, NeedleInHaystack) {
    // The same needle SAT finds: single differing minterm among 2^20.
    const unsigned n = 20;
    Aig g;
    const auto gp = g.add_pis(n);
    g.add_po(g.and_reduce(gp));
    Aig h;
    (void)h.add_pis(n);
    h.add_po(bg::aig::lit_false);
    EXPECT_EQ(check_equivalence_bdd(g, h), CecVerdict::NotEquivalent);
}

class TripleEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TripleEngine, AllThreeCecEnginesAgree) {
    // Simulation (exhaustive), SAT and BDD must return the same verdict
    // on both equivalent and inequivalent pairs.
    const std::uint64_t seed = GetParam();
    const Aig original = bg::test::redundant_aig(8, 35, 3, seed);
    Aig optimized = original;
    bg::Rng rng(seed * 7 + 1);
    bg::opt::DecisionVector d(optimized.num_slots(), bg::opt::OpKind::None);
    for (bg::aig::Var v = 0; v < optimized.num_slots(); ++v) {
        if (optimized.is_and(v)) {
            d[v] = bg::opt::op_from_index(static_cast<int>(rng.next_below(3)));
        }
    }
    (void)bg::opt::orchestrate(optimized, d);

    EXPECT_EQ(bg::aig::check_equivalence(original, optimized),
              CecVerdict::Equivalent);
    EXPECT_EQ(bg::sat::check_equivalence_sat(original, optimized),
              CecVerdict::Equivalent);
    EXPECT_EQ(check_equivalence_bdd(original, optimized),
              CecVerdict::Equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleEngine,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{9}));

}  // namespace
