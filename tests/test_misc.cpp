#include <gtest/gtest.h>

#include <cstdlib>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "core/flow.hpp"
#include "core/trainer.hpp"
#include "io/bench.hpp"
#include "util/progress.hpp"

namespace {

using bg::aig::Aig;

TEST(FullScaleFlag, EnvironmentVariable) {
    unsetenv("BOOLGEBRA_FULL");
    EXPECT_FALSE(bg::full_scale_requested());
    setenv("BOOLGEBRA_FULL", "1", 1);
    EXPECT_TRUE(bg::full_scale_requested());
    setenv("BOOLGEBRA_FULL", "0", 1);
    EXPECT_FALSE(bg::full_scale_requested());
    unsetenv("BOOLGEBRA_FULL");
}

TEST(FullScaleFlag, CommandLine) {
    unsetenv("BOOLGEBRA_FULL");
    const char* argv1[] = {"bench", "--full"};
    EXPECT_TRUE(bg::full_scale_requested(2, const_cast<char**>(argv1)));
    const char* argv2[] = {"bench", "--fast"};
    EXPECT_FALSE(bg::full_scale_requested(2, const_cast<char**>(argv2)));
}

TEST(BenchWriter, ConstantOutputsNeedAnInput) {
    // A constant PO is expressible only via x & !x; with no inputs the
    // writer must refuse rather than crash.
    Aig no_inputs;
    no_inputs.add_po(bg::aig::lit_true);
    EXPECT_THROW((void)bg::io::write_bench_string(no_inputs),
                 std::runtime_error);

    Aig with_input;
    (void)with_input.add_pi();
    with_input.add_po(bg::aig::lit_false);
    const auto text = bg::io::write_bench_string(with_input);
    const Aig back = bg::io::read_bench_string(text);
    EXPECT_EQ(bg::aig::check_equivalence(with_input, back),
              bg::aig::CecVerdict::Equivalent);
}

TEST(FlowFeatureAblation, StaticOnlyFlowStillRuns) {
    // With dynamic features disabled, predictions become sample-agnostic,
    // but the flow must stay functional (top-k degenerates to sample
    // order) — this is the configuration the ablation bench measures.
    const Aig design = bg::circuits::make_benchmark_scaled("b10", 0.4);
    bg::core::ModelConfig mc;
    mc.sage_dims = {12, 12, 8};
    mc.mlp_dims = {16, 8, 1};
    mc.dropout = 0.0F;
    bg::core::BoolGebraModel model(mc);
    bg::core::FlowConfig fc;
    fc.num_samples = 16;
    fc.top_k = 4;
    fc.features.use_dynamic = false;
    const auto res = bg::core::run_flow(design, model, fc);
    EXPECT_EQ(res.predictions.size(), 16u);
    EXPECT_GE(res.best_reduction, 0);
}

TEST(ModelConfig, QuickAndPaperDiffer) {
    const auto quick = bg::core::ModelConfig::quick();
    const auto paper = bg::core::ModelConfig::paper();
    EXPECT_LT(quick.sage_dims[0], paper.sage_dims[0]);
    EXPECT_FLOAT_EQ(paper.dropout, 0.1F);
    EXPECT_FLOAT_EQ(quick.dropout, 0.0F);
    const auto tq = bg::core::TrainConfig::quick();
    const auto tp = bg::core::TrainConfig::paper();
    EXPECT_LT(tq.epochs, tp.epochs);
    EXPECT_DOUBLE_EQ(tp.lr, 8e-7);
    EXPECT_EQ(tp.batch_size, 100u);
    EXPECT_EQ(tp.epochs, 1500u);
}

}  // namespace
