/// \file test_partition.cpp
/// Invariants of the MFFC-disjoint region partitioner that the parallel
/// orchestrator's determinism argument rests on: regions are contiguous
/// ordered intervals covering every root exactly once, no node lies in
/// two regions' MFFCs, each region's footprint covers the full fanin
/// cone of each of its roots, and the partition is deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "circuits/registry.hpp"
#include "opt/mffc.hpp"
#include "opt/partition.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::PartitionOptions;
using bg::opt::PartitionResult;
using bg::opt::Region;
using bg::opt::partition_regions;

/// Inclusive fanin cone (TFI down to and including PIs) of one root —
/// an independent reimplementation to check Region::footprint against.
std::vector<Var> fanin_cone(const Aig& g, Var root) {
    std::vector<char> seen(g.num_slots(), 0);
    std::vector<Var> cone;
    std::vector<Var> stack{root};
    seen[root] = 1;
    while (!stack.empty()) {
        const Var v = stack.back();
        stack.pop_back();
        cone.push_back(v);
        if (!g.is_and(v)) {
            continue;
        }
        for (const NodeRef f : g.fanin_refs(v)) {
            if (seen[f.index()] == 0) {
                seen[f.index()] = 1;
                stack.push_back(f.index());
            }
        }
    }
    std::sort(cone.begin(), cone.end());
    return cone;
}

void check_invariants(const Aig& g, const std::vector<Var>& roots,
                      const PartitionResult& res) {
    ASSERT_FALSE(res.regions.empty());

    // Contiguous ordered intervals covering all roots exactly once.
    std::size_t next = 0;
    for (const Region& r : res.regions) {
        EXPECT_EQ(r.first, next);
        EXPECT_GE(r.count, 1u);
        next = r.first + r.count;
    }
    EXPECT_EQ(next, roots.size());

    // MFFC-disjointness across regions: stamp every region's mffc_nodes
    // and require that no node is stamped twice.
    std::vector<std::size_t> owner(g.num_slots(), ~std::size_t{0});
    for (std::size_t k = 0; k < res.regions.size(); ++k) {
        const Region& r = res.regions[k];
        ASSERT_FALSE(r.mffc_nodes.empty());
        EXPECT_TRUE(std::is_sorted(r.mffc_nodes.begin(), r.mffc_nodes.end()));
        for (const Var v : r.mffc_nodes) {
            EXPECT_EQ(owner[v], ~std::size_t{0})
                << "node " << v << " in two regions' MFFCs (regions "
                << owner[v] << " and " << k << ")";
            owner[v] = k;
        }
        // Every root belongs to its own region's MFFC union.
        for (std::size_t i = r.first; i < r.first + r.count; ++i) {
            EXPECT_TRUE(std::binary_search(r.mffc_nodes.begin(),
                                           r.mffc_nodes.end(), roots[i]))
                << "root " << roots[i] << " missing from its region's MFFC";
        }
    }

    // Footprint coverage: each region's footprint is sorted, contains its
    // mffc_nodes, and covers the inclusive fanin cone of every root.
    for (const Region& r : res.regions) {
        ASSERT_FALSE(r.footprint.empty());
        EXPECT_TRUE(std::is_sorted(r.footprint.begin(), r.footprint.end()));
        EXPECT_TRUE(std::includes(r.footprint.begin(), r.footprint.end(),
                                  r.mffc_nodes.begin(), r.mffc_nodes.end()))
            << "footprint must contain the region's MFFC union";
        for (std::size_t i = r.first; i < r.first + r.count; ++i) {
            const auto cone = fanin_cone(g, roots[i]);
            EXPECT_TRUE(std::includes(r.footprint.begin(), r.footprint.end(),
                                      cone.begin(), cone.end()))
                << "footprint must cover the fanin cone of root " << roots[i];
        }
    }
}

TEST(Partition, InvariantsHoldOnRegistryDesigns) {
    for (const auto& name : bg::circuits::benchmark_names()) {
        const Aig g = bg::circuits::make_benchmark_scaled(name, 0.3);
        const std::vector<Var> roots = g.topo_ands();
        for (const std::size_t target : {std::size_t{1}, std::size_t{8},
                                         std::size_t{32}}) {
            SCOPED_TRACE(name + " target_roots=" + std::to_string(target));
            PartitionOptions opts;
            opts.target_roots = target;
            opts.with_footprints = true;
            const auto res = partition_regions(g, roots, opts);
            check_invariants(g, roots, res);
        }
    }
}

TEST(Partition, SmallTargetsYieldMultipleRegions) {
    // The partitioner must actually split real designs — a single
    // catch-all region would make the parallel path trivially sequential.
    // (Most tiny scaled designs do collapse via overlap merges; b08 at
    // 0.3 is pinned as one that keeps several disjoint regions.)
    const Aig g = bg::circuits::make_benchmark_scaled("b08", 0.3);
    const std::vector<Var> roots = g.topo_ands();
    PartitionOptions opts;
    opts.target_roots = 1;
    const auto res = partition_regions(g, roots, opts);
    EXPECT_GT(res.regions.size(), 1u);
}

TEST(Partition, DeterministicAcrossRepeats) {
    const Aig g = bg::test::redundant_aig(10, 60, 3, 17);
    const std::vector<Var> roots = g.topo_ands();
    PartitionOptions opts;
    opts.target_roots = 8;
    opts.with_footprints = true;
    const auto a = partition_regions(g, roots, opts);
    const auto b = partition_regions(g, roots, opts);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    EXPECT_EQ(a.merges, b.merges);
    for (std::size_t k = 0; k < a.regions.size(); ++k) {
        EXPECT_EQ(a.regions[k].first, b.regions[k].first);
        EXPECT_EQ(a.regions[k].count, b.regions[k].count);
        EXPECT_EQ(a.regions[k].mffc_nodes, b.regions[k].mffc_nodes);
        EXPECT_EQ(a.regions[k].footprint, b.regions[k].footprint);
    }
}

TEST(Partition, EmptyRootsYieldNoRegions) {
    const Aig g = bg::test::random_aig(4, 10, 1, 3);
    const auto res = partition_regions(g, {}, {});
    EXPECT_TRUE(res.regions.empty());
    EXPECT_EQ(res.merges, 0u);
}

TEST(Partition, MergesAreCountedOnOverlappingCones) {
    // Deep redundant designs overlap MFFCs under a tiny region target, so
    // at least one design must report merges — the counter is live.
    std::size_t total_merges = 0;
    for (const auto& name : bg::circuits::benchmark_names()) {
        const Aig g = bg::circuits::make_benchmark_scaled(name, 0.3);
        PartitionOptions opts;
        opts.target_roots = 1;
        total_merges += partition_regions(g, g.topo_ands(), opts).merges;
    }
    EXPECT_GT(total_merges, 0u);
}

}  // namespace
