#include <gtest/gtest.h>

#include "tt/truth_table.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using bg::tt::TruthTable;

TEST(TruthTable, ConstantsAndWidth) {
    for (unsigned nv : {0u, 1u, 3u, 6u, 7u, 10u}) {
        const auto z = TruthTable::zeros(nv);
        const auto o = TruthTable::ones(nv);
        EXPECT_TRUE(z.is_const0());
        EXPECT_FALSE(z.is_const1());
        EXPECT_TRUE(o.is_const1());
        EXPECT_EQ(z.num_bits(), 1ULL << nv);
        EXPECT_EQ(z.count_ones(), 0u);
        EXPECT_EQ(o.count_ones(), 1ULL << nv);
    }
}

TEST(TruthTable, ProjectionBits) {
    for (unsigned nv : {3u, 6u, 8u}) {
        for (unsigned i = 0; i < nv; ++i) {
            const auto x = TruthTable::nth_var(nv, i);
            for (std::uint64_t m = 0; m < x.num_bits(); ++m) {
                EXPECT_EQ(x.get_bit(m), ((m >> i) & 1) != 0)
                    << "nv=" << nv << " var=" << i << " minterm=" << m;
            }
        }
    }
}

TEST(TruthTable, SmallWidthReplicationInvariant) {
    // For nv < 6 the word pattern must repeat every 2^nv bits so word ops
    // stay uniform.
    auto t = TruthTable::nth_var(2, 0);
    const auto w = t.words()[0];
    EXPECT_EQ(w & 0xF, (w >> 4) & 0xF);
    EXPECT_EQ(w & 0xFFFF, (w >> 16) & 0xFFFF);
}

TEST(TruthTable, BooleanAlgebraLaws) {
    bg::Rng rng(123);
    for (unsigned nv : {2u, 4u, 7u}) {
        TruthTable a(nv);
        TruthTable b(nv);
        for (std::uint64_t m = 0; m < a.num_bits(); ++m) {
            a.set_bit(m, rng.next_bool());
            b.set_bit(m, rng.next_bool());
        }
        EXPECT_EQ((a & b), (b & a));
        EXPECT_EQ((a | b), (b | a));
        EXPECT_EQ(~(a & b), (~a | ~b));  // De Morgan
        EXPECT_EQ((a ^ b), ((a & ~b) | (~a & b)));
        EXPECT_EQ((a & ~a), TruthTable::zeros(nv));
        EXPECT_EQ((a | ~a), TruthTable::ones(nv));
        EXPECT_EQ(~~a, a);
    }
}

TEST(TruthTable, CofactorShannonExpansion) {
    bg::Rng rng(77);
    for (unsigned nv : {3u, 5u, 6u, 8u}) {
        TruthTable f(nv);
        for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
            f.set_bit(m, rng.next_bool());
        }
        for (unsigned i = 0; i < nv; ++i) {
            const auto f0 = f.cofactor0(i);
            const auto f1 = f.cofactor1(i);
            const auto xi = TruthTable::nth_var(nv, i);
            EXPECT_EQ(((~xi & f0) | (xi & f1)), f)
                << "Shannon expansion failed at nv=" << nv << " var=" << i;
            EXPECT_FALSE(f0.depends_on(i));
            EXPECT_FALSE(f1.depends_on(i));
        }
    }
}

TEST(TruthTable, SupportDetection) {
    const unsigned nv = 6;
    const auto x0 = TruthTable::nth_var(nv, 0);
    const auto x3 = TruthTable::nth_var(nv, 3);
    const auto f = x0 & ~x3;
    EXPECT_EQ(f.support_mask(), 0b001001u);
    EXPECT_EQ(f.support_size(), 2u);
    EXPECT_TRUE(f.depends_on(0));
    EXPECT_FALSE(f.depends_on(1));
    EXPECT_TRUE(f.depends_on(3));
}

TEST(TruthTable, SwapVarsInvolution) {
    bg::Rng rng(5);
    for (unsigned nv : {4u, 7u}) {
        TruthTable f(nv);
        for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
            f.set_bit(m, rng.next_bool());
        }
        for (unsigned i = 0; i < nv; ++i) {
            for (unsigned j = 0; j < nv; ++j) {
                EXPECT_EQ(f.swap_vars(i, j).swap_vars(i, j), f);
            }
        }
    }
}

TEST(TruthTable, SwapVarsSemantics) {
    const unsigned nv = 3;
    const auto x0 = TruthTable::nth_var(nv, 0);
    const auto x2 = TruthTable::nth_var(nv, 2);
    const auto f = x0 & ~x2;  // f(x0, x1, x2) = x0 !x2
    const auto g = f.swap_vars(0, 2);
    EXPECT_EQ(g, (x2 & ~x0));
}

TEST(TruthTable, FlipVarSemantics) {
    bg::Rng rng(6);
    TruthTable f(5);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
        f.set_bit(m, rng.next_bool());
    }
    for (unsigned i = 0; i < 5; ++i) {
        const auto g = f.flip_var(i);
        for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
            EXPECT_EQ(g.get_bit(m), f.get_bit(m ^ (1ULL << i)));
        }
        EXPECT_EQ(g.flip_var(i), f);
    }
}

TEST(TruthTable, U16RoundTrip) {
    for (std::uint32_t bits : {0x0000u, 0xFFFFu, 0x8000u, 0x6996u, 0xCAFEu}) {
        const auto t = TruthTable::from_u16(static_cast<std::uint16_t>(bits));
        EXPECT_EQ(t.to_u16(), bits);
    }
}

TEST(TruthTable, U16LiftToWiderWidth) {
    // x0 & x1 lifted to 6 vars must not depend on x4/x5.
    const auto t = TruthTable::from_u16(0x8888, 6);
    EXPECT_TRUE(t.depends_on(0));
    EXPECT_FALSE(t.depends_on(2));
    EXPECT_FALSE(t.depends_on(5));
}

TEST(TruthTable, HexRoundTrip) {
    bg::Rng rng(9);
    for (unsigned nv : {2u, 4u, 6u, 9u}) {
        TruthTable f(nv);
        for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
            f.set_bit(m, rng.next_bool());
        }
        const auto hex = f.to_hex();
        EXPECT_EQ(TruthTable::from_hex(nv, hex), f);
    }
}

TEST(TruthTable, ImpliesPartialOrder) {
    const unsigned nv = 4;
    const auto x0 = TruthTable::nth_var(nv, 0);
    const auto x1 = TruthTable::nth_var(nv, 1);
    EXPECT_TRUE((x0 & x1).implies(x0));
    EXPECT_TRUE(x0.implies(x0 | x1));
    EXPECT_FALSE(x0.implies(x0 & x1));
    EXPECT_TRUE(TruthTable::zeros(nv).implies(x0));
    EXPECT_TRUE(x0.implies(TruthTable::ones(nv)));
}

TEST(TruthTable, CountOnesSmallWidths) {
    // Replication must not inflate popcounts for nv < 6.
    const auto x = TruthTable::nth_var(2, 1);
    EXPECT_EQ(x.count_ones(), 2u);
    const auto o = TruthTable::ones(0);
    EXPECT_EQ(o.count_ones(), 1u);
}

TEST(TruthTable, HashDistinguishes) {
    const auto a = TruthTable::nth_var(6, 0);
    const auto b = TruthTable::nth_var(6, 1);
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), TruthTable::nth_var(6, 0).hash());
}

TEST(TruthTable, WidthMismatchThrows) {
    const auto a = TruthTable::zeros(3);
    const auto b = TruthTable::zeros(4);
    EXPECT_THROW((void)(a & b), bg::ContractViolation);
}

TEST(TruthTable, TooWideThrows) {
    EXPECT_THROW(TruthTable t(21), bg::ContractViolation);
}

class TruthTableWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruthTableWidths, RandomAlgebraSweep) {
    const unsigned nv = GetParam();
    bg::Rng rng(1000 + nv);
    TruthTable a(nv);
    TruthTable b(nv);
    TruthTable c(nv);
    for (std::uint64_t m = 0; m < a.num_bits(); ++m) {
        a.set_bit(m, rng.next_bool());
        b.set_bit(m, rng.next_bool());
        c.set_bit(m, rng.next_bool());
    }
    // Distributivity and absorption.
    EXPECT_EQ((a & (b | c)), ((a & b) | (a & c)));
    EXPECT_EQ((a | (b & c)), ((a | b) & (a | c)));
    EXPECT_EQ((a & (a | b)), a);
    EXPECT_EQ((a | (a & b)), a);
    // XOR is associative.
    EXPECT_EQ(((a ^ b) ^ c), (a ^ (b ^ c)));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, TruthTableWidths,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u));

}  // namespace
