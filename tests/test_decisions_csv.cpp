#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "opt/orchestrate.hpp"
#include "util/contracts.hpp"

namespace {

using bg::opt::DecisionVector;
using bg::opt::load_decisions_csv;
using bg::opt::OpKind;
using bg::opt::save_decisions_csv;

class DecisionsCsv : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("bg_decisions_csv_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path file(const char* name) const {
        return dir_ / name;
    }
    std::filesystem::path write_text(const char* name, const char* text) {
        const auto p = file(name);
        std::ofstream os(p);
        os << text;
        return p;
    }

    std::filesystem::path dir_;
};

TEST_F(DecisionsCsv, RoundTripsEveryOpKindIncludingNone) {
    const DecisionVector d = {OpKind::Rewrite, OpKind::Resub,
                              OpKind::Refactor, OpKind::None,
                              OpKind::None,    OpKind::Rewrite};
    const auto p = file("all_ops.csv");
    save_decisions_csv(p, d);
    EXPECT_EQ(load_decisions_csv(p), d);
}

TEST_F(DecisionsCsv, RoundTripsEmptyVector) {
    const DecisionVector d;
    const auto p = file("empty.csv");
    save_decisions_csv(p, d);
    const auto loaded = load_decisions_csv(p);
    EXPECT_TRUE(loaded.empty());
}

TEST_F(DecisionsCsv, RoundTripsLargeVectorDensely) {
    DecisionVector d;
    for (std::size_t i = 0; i < 500; ++i) {
        d.push_back(bg::opt::op_from_index(static_cast<int>(i % 4)));
    }
    const auto p = file("large.csv");
    save_decisions_csv(p, d);
    EXPECT_EQ(load_decisions_csv(p), d);
}

TEST_F(DecisionsCsv, RejectsWrongColumnCount) {
    const auto p = write_text("columns.csv",
                              "node,decision\n0,1,extra\n");
    EXPECT_THROW((void)load_decisions_csv(p), std::runtime_error);
    const auto p1 = write_text("one_column.csv", "node,decision\n0\n");
    EXPECT_THROW((void)load_decisions_csv(p1), std::runtime_error);
}

TEST_F(DecisionsCsv, RejectsSparseOrShuffledIndices) {
    const auto gap = write_text("gap.csv", "node,decision\n0,1\n2,1\n");
    EXPECT_THROW((void)load_decisions_csv(gap), std::runtime_error);
    const auto shuffled =
        write_text("shuffled.csv", "node,decision\n1,1\n0,1\n");
    EXPECT_THROW((void)load_decisions_csv(shuffled), std::runtime_error);
}

TEST_F(DecisionsCsv, RejectsOutOfRangeDecision) {
    const auto p = write_text("bad_op.csv", "node,decision\n0,7\n");
    EXPECT_THROW((void)load_decisions_csv(p), bg::ContractViolation);
}

TEST_F(DecisionsCsv, RejectsNonNumericCells) {
    const auto p = write_text("garbage.csv", "node,decision\nzero,rw\n");
    EXPECT_ANY_THROW((void)load_decisions_csv(p));
}

TEST_F(DecisionsCsv, MissingFileThrows) {
    EXPECT_THROW((void)load_decisions_csv(file("does_not_exist.csv")),
                 std::runtime_error);
}

}  // namespace
