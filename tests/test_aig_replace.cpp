#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/cec.hpp"
#include "aig/simulation.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity

/// Simulate all POs exhaustively and return the signatures (<= 14 PIs).
SimVectors po_truth(const Aig& g) {
    const auto pats = exhaustive_patterns(g.num_pis());
    return po_signatures(g, simulate(g, pats));
}

TEST(Replace, SimpleRedirect) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    // Replace x by a (pretend we proved x == a).
    g.replace(lit_var(x), a);
    g.check_integrity();
    EXPECT_TRUE(g.is_dead(lit_var(x)));
    EXPECT_EQ(g.num_ands(), 1u);
    // y must now be AND(a, c).
    const Var yv = lit_var(g.po(0));
    EXPECT_FALSE(g.is_dead(yv));
    const auto f0 = g.fanin0(yv);
    const auto f1 = g.fanin1(yv);
    EXPECT_TRUE((f0 == a && f1 == c) || (f0 == c && f1 == a));
}

TEST(Replace, ComplementedRedirect) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(lit_not(x), c);  // uses !x
    g.add_po(y);
    g.replace(lit_var(x), lit_not(a));  // x := !a, so !x := a
    g.check_integrity();
    const Var yv = lit_var(g.po(0));
    const auto f0 = g.fanin0(yv);
    const auto f1 = g.fanin1(yv);
    EXPECT_TRUE((f0 == a && f1 == c) || (f0 == c && f1 == a));
}

TEST(Replace, PoRedirect) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    g.add_po(lit_not(x));
    g.replace(lit_var(x), lit_not(a));
    g.check_integrity();
    EXPECT_EQ(g.po(0), lit_not(a));
    EXPECT_EQ(g.po(1), a);
    EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Replace, CascadingMergeThroughStrash) {
    // Two structurally different nodes become identical after the replace
    // and must merge, cascading upward.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit d = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit u = g.and_(x, c);        // AND(x, c)
    const Lit w = g.and_(d, c);        // AND(d, c)
    const Lit top = g.and_(u, lit_not(w));
    g.add_po(top);
    // After x := d, u becomes AND(d, c) == w, so u merges into w and
    // top becomes AND(w, !w) == const0, cascading into the PO.
    g.replace(lit_var(x), d);
    g.check_integrity();
    EXPECT_EQ(g.po(0), lit_false);
    EXPECT_EQ(g.num_ands(), 0u) << "everything should be swept";
}

TEST(Replace, TrivialCollapseToConstant) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, lit_not(a));  // x & !a
    g.add_po(y);
    // x := a makes y = a & !a = 0.
    g.replace(lit_var(x), a);
    g.check_integrity();
    EXPECT_EQ(g.po(0), lit_false);
}

TEST(Replace, TrivialCollapseToOther) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, a);  // absorbs to x when x := a
    g.add_po(y);
    g.replace(lit_var(x), a);
    g.check_integrity();
    EXPECT_EQ(g.po(0), a);
    EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Replace, KeepsSharedFaninAlive) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit shared = g.and_(a, b);
    const Lit x = g.and_(shared, c);
    const Lit other = g.and_(shared, lit_not(c));
    g.add_po(x);
    g.add_po(other);
    g.replace(lit_var(x), a);
    g.check_integrity();
    EXPECT_FALSE(g.is_dead(lit_var(shared)))
        << "shared must survive, the other PO still uses it";
    EXPECT_TRUE(g.is_dead(lit_var(x)));
}

TEST(Replace, SelfReplacementThrows) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    EXPECT_THROW(g.replace(lit_var(x), x), bg::ContractViolation);
    EXPECT_THROW(g.replace(lit_var(x), lit_not(x)), bg::ContractViolation);
}

TEST(Replace, CycleCreationThrows) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, lit_not(a));
    g.add_po(y);
    // Replacing x (in y's TFI) by y would create a cycle.
    EXPECT_THROW(g.replace(lit_var(x), y), bg::ContractViolation);
}

TEST(Replace, FunctionPreservingRandomizedEquivalences) {
    // Property test: build a random AIG, pick any AND node v, rebuild an
    // equivalent literal for it from scratch (same function over PIs), do
    // the replace, and check the whole network function is unchanged.
    bg::Rng rng(2024);
    for (int round = 0; round < 30; ++round) {
        Aig g;
        const auto pis = g.add_pis(6);
        std::vector<Lit> pool(pis);
        for (int k = 0; k < 40; ++k) {
            const Lit u = lit_not_cond(
                pool[rng.next_below(pool.size())], rng.next_bool());
            const Lit v = lit_not_cond(
                pool[rng.next_below(pool.size())], rng.next_bool());
            pool.push_back(g.and_(u, v));
        }
        for (int k = 0; k < 4; ++k) {
            g.add_po(lit_not_cond(pool[pool.size() - 1 - static_cast<std::size_t>(k)],
                                  rng.next_bool()));
        }
        const auto before = po_truth(g);

        // Pick a live AND node and clone its cone function through fresh
        // nodes (the strash may or may not dedupe pieces of it).
        const auto ands = g.topo_ands();
        if (ands.empty()) {
            continue;
        }
        const Var target = ands[rng.next_below(ands.size())];
        // Rebuild target's function from PIs bottom-up over its cone.
        std::vector<Lit> rebuilt(g.num_slots(), null_lit);
        rebuilt[0] = lit_false;
        for (const Var pv : g.pis()) {
            rebuilt[pv] = make_lit(pv);
        }
        for (const Var v : g.topo_ands()) {
            const Lit f0 = g.fanin0(v);
            const Lit f1 = g.fanin1(v);
            rebuilt[v] =
                g.and_(lit_not_cond(rebuilt[lit_var(f0)], lit_is_compl(f0)),
                       lit_not_cond(rebuilt[lit_var(f1)], lit_is_compl(f1)));
        }
        const Lit equiv = rebuilt[target];
        if (lit_var(equiv) == target) {
            continue;  // strash returned the node itself; nothing to test
        }
        if (g.is_in_tfi(lit_var(equiv), target)) {
            continue;  // would be a cycle; not a legal replacement
        }
        g.replace(target, equiv);
        g.check_integrity();
        const auto after = po_truth(g);
        ASSERT_EQ(before.size(), after.size());
        for (std::size_t i = 0; i < before.size(); ++i) {
            EXPECT_EQ(before[i], after[i]) << "round " << round << " po " << i;
        }
    }
}

TEST(Replace, ChainOfReplacementsKeepsIntegrity) {
    // Stress: repeatedly replace nodes with equivalent constants computed
    // by construction (x & !x patterns) and audit after each step.
    Aig g;
    const auto pis = g.add_pis(4);
    const Lit ab = g.and_(pis[0], pis[1]);
    const Lit abc = g.and_(ab, pis[2]);
    const Lit zero = g.and_(abc, lit_not(abc));  // constant 0 by construction
    EXPECT_EQ(zero, lit_false) << "trivial rule should have caught this";

    const Lit u = g.and_(pis[2], pis[3]);
    const Lit v = g.and_(ab, u);
    g.add_po(v);
    g.add_po(abc);
    g.check_integrity();
    // Replace u := pis[2] (a strict strengthening is NOT function-safe in
    // general, but the harness only checks structural integrity here).
    g.replace(lit_var(u), pis[2]);
    g.check_integrity();
    EXPECT_EQ(g.num_pos(), 2u);
}

}  // namespace
