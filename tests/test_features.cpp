#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/features.hpp"
#include "opt/orchestrate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using namespace bg::core;  // NOLINT: test brevity
using bg::opt::OpKind;

TEST(StaticFeatures, PiRowsAreFilled) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(g.and_(a, b));
    const auto st = compute_static_features(g);
    ASSERT_EQ(st.size(), g.num_slots());
    for (const Var v : {lit_var(a), lit_var(b), Var{0}}) {
        for (int i = 0; i < static_dim; ++i) {
            EXPECT_FLOAT_EQ(st[v][i], pi_fill);
        }
    }
}

TEST(StaticFeatures, EdgeComplementBits) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(lit_not(a), b);  // fanin0 = !a, fanin1 = b
    g.add_po(x);
    const auto st = compute_static_features(g);
    const auto& row = st[lit_var(x)];
    // Normalized fanin order puts !a first (literal 3 < literal 4).
    EXPECT_FLOAT_EQ(row[0], 1.0F);
    EXPECT_FLOAT_EQ(row[1], 0.0F);
}

TEST(StaticFeatures, GainColumnsMatchChecks) {
    // The mux-collapse pattern: rw applicable with gain 3 at the root.
    Aig g;
    const Lit c = g.add_pi();
    const Lit a = g.add_pi();
    const Lit f = g.or_(g.and_(c, a), g.and_(lit_not(c), a));
    g.add_po(f);
    const auto st = compute_static_features(g);
    const auto& row = st[lit_var(f)];
    EXPECT_FLOAT_EQ(row[2], 1.0F) << "rw must be applicable";
    EXPECT_FLOAT_EQ(row[3], 3.0F) << "rw gain must be 3";
}

TEST(StaticFeatures, InapplicableIsMinusOne) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);  // irredundant
    g.add_po(x);
    const auto st = compute_static_features(g);
    const auto& row = st[lit_var(x)];
    EXPECT_FLOAT_EQ(row[2], 0.0F);
    EXPECT_FLOAT_EQ(row[3], -1.0F);
    EXPECT_FLOAT_EQ(row[4], 0.0F);
    EXPECT_FLOAT_EQ(row[5], -1.0F);
    EXPECT_FLOAT_EQ(row[6], 0.0F);
    EXPECT_FLOAT_EQ(row[7], -1.0F);
}

TEST(DynamicFeatures, OneHotEncoding) {
    auto g = bg::test::redundant_aig(6, 15, 2, 31);
    std::vector<OpKind> applied(g.num_slots(), OpKind::None);
    const auto ands = g.topo_ands();
    ASSERT_GE(ands.size(), 3u);
    applied[ands[0]] = OpKind::Rewrite;
    applied[ands[1]] = OpKind::Resub;
    applied[ands[2]] = OpKind::Refactor;
    const auto dy = compute_dynamic_features(g, applied);
    EXPECT_FLOAT_EQ(dy[ands[0]][1], 1.0F);
    EXPECT_FLOAT_EQ(dy[ands[0]][0], 0.0F);
    EXPECT_FLOAT_EQ(dy[ands[1]][2], 1.0F);
    EXPECT_FLOAT_EQ(dy[ands[2]][3], 1.0F);
    // Untouched node: none-hot.
    EXPECT_FLOAT_EQ(dy[ands[3]][0], 1.0F);
    // PI row filled.
    EXPECT_FLOAT_EQ(dy[g.pi(0)][0], pi_fill);
}

TEST(AssembleFeatures, LayoutAndAblation) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    const auto st = compute_static_features(g);
    std::vector<OpKind> applied(g.num_slots(), OpKind::None);
    const auto dy = compute_dynamic_features(g, applied);

    const auto full = assemble_features(st, dy);
    ASSERT_EQ(full.size(), g.num_slots() * feature_dim);
    const std::size_t xrow = lit_var(x) * feature_dim;
    EXPECT_FLOAT_EQ(full[xrow + 0], st[lit_var(x)][0]);
    EXPECT_FLOAT_EQ(full[xrow + static_dim + 0], 1.0F);  // none-hot

    FeatureConfig static_only;
    static_only.use_dynamic = false;
    const auto so = assemble_features(st, dy, static_only);
    EXPECT_FLOAT_EQ(so[xrow + static_dim + 0], 0.0F);

    FeatureConfig dynamic_only;
    dynamic_only.use_static = false;
    const auto dyn = assemble_features(st, dy, dynamic_only);
    EXPECT_FLOAT_EQ(dyn[xrow + 0], 0.0F);
    EXPECT_FLOAT_EQ(dyn[xrow + static_dim + 0], 1.0F);
}

TEST(Csr, UndirectedDegrees) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, lit_not(a));
    g.add_po(y);
    const auto csr = build_csr(g);
    EXPECT_EQ(csr.num_nodes(), g.num_slots());
    // a feeds x and y -> degree 2; x has fanins a,b and fanout y -> 3.
    EXPECT_EQ(csr.degree(lit_var(a)), 2u);
    EXPECT_EQ(csr.degree(lit_var(b)), 1u);
    EXPECT_EQ(csr.degree(lit_var(x)), 3u);
    EXPECT_EQ(csr.degree(lit_var(y)), 2u);
    EXPECT_EQ(csr.degree(0), 0u);  // constant unused
    // Symmetry: total neighbor entries = 2 * edges = 2 * (2 ANDs * 2).
    EXPECT_EQ(csr.neighbors.size(), 8u);
}

TEST(Csr, TraceFeaturesOnRealDesign) {
    // End-to-end: orchestrate a registry design and embed the trace.
    auto design = bg::circuits::make_benchmark_scaled("b10", 0.5);
    const auto original = design;
    bg::Rng rng(5);
    bg::opt::DecisionVector d(design.num_slots(), OpKind::None);
    for (Var v = 0; v < design.num_slots(); ++v) {
        if (design.is_and(v)) {
            d[v] = bg::opt::op_from_index(static_cast<int>(rng.next_below(3)));
        }
    }
    auto work = design;
    const auto res = bg::opt::orchestrate(work, d);
    const auto dy = compute_dynamic_features(original, res.applied);
    std::size_t applied_count = 0;
    for (const Var v : original.topo_ands()) {
        if (dy[v][1] + dy[v][2] + dy[v][3] > 0.5F) {
            ++applied_count;
        }
    }
    EXPECT_EQ(applied_count, res.num_applied);
}

}  // namespace
