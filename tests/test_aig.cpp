#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "util/contracts.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity

TEST(Lit, EncodingHelpers) {
    EXPECT_EQ(lit_var(make_lit(5, false)), 5u);
    EXPECT_EQ(lit_var(make_lit(5, true)), 5u);
    EXPECT_TRUE(lit_is_compl(make_lit(5, true)));
    EXPECT_FALSE(lit_is_compl(make_lit(5, false)));
    EXPECT_EQ(lit_not(make_lit(5, false)), make_lit(5, true));
    EXPECT_EQ(lit_not_cond(make_lit(5, false), true), make_lit(5, true));
    EXPECT_EQ(lit_not_cond(make_lit(5, false), false), make_lit(5, false));
    EXPECT_EQ(lit_regular(make_lit(5, true)), make_lit(5, false));
    EXPECT_EQ(lit_false, 0u);
    EXPECT_EQ(lit_true, 1u);
}

TEST(Aig, EmptyGraph) {
    Aig g;
    EXPECT_EQ(g.num_pis(), 0u);
    EXPECT_EQ(g.num_pos(), 0u);
    EXPECT_EQ(g.num_ands(), 0u);
    EXPECT_EQ(g.num_slots(), 1u);  // constant node
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, TrivialAndRules) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    EXPECT_EQ(g.and_(a, lit_false), lit_false);
    EXPECT_EQ(g.and_(lit_false, b), lit_false);
    EXPECT_EQ(g.and_(a, lit_true), a);
    EXPECT_EQ(g.and_(lit_true, b), b);
    EXPECT_EQ(g.and_(a, a), a);
    EXPECT_EQ(g.and_(a, lit_not(a)), lit_false);
    EXPECT_EQ(g.num_ands(), 0u) << "trivial ANDs must not allocate nodes";
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, StructuralHashingDeduplicates) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(b, a);  // commuted
    EXPECT_EQ(x, y);
    EXPECT_EQ(g.num_ands(), 1u);
    const Lit z = g.and_(lit_not(a), b);
    EXPECT_NE(x, z);
    EXPECT_EQ(g.num_ands(), 2u);
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, LookupAndDoesNotCreate) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    EXPECT_EQ(g.lookup_and(a, b), null_lit);
    EXPECT_EQ(g.num_ands(), 0u);
    const Lit x = g.and_(a, b);
    EXPECT_EQ(g.lookup_and(a, b), x);
    EXPECT_EQ(g.lookup_and(b, a), x);
    EXPECT_EQ(g.lookup_and(a, lit_true), a) << "trivial lookups simplify";
}

TEST(Aig, RefCountsTrackFanouts) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    EXPECT_EQ(g.ref_count(lit_var(a)), 1u);
    EXPECT_EQ(g.ref_count(lit_var(x)), 1u);
    EXPECT_EQ(g.ref_count(lit_var(y)), 1u);  // the PO
    const Lit z = g.and_(x, lit_not(c));
    g.add_po(z);
    EXPECT_EQ(g.ref_count(lit_var(x)), 2u);
    EXPECT_EQ(g.ref_count(lit_var(c)), 2u);
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, XorMuxMajSemantics) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    g.add_po(g.xor_(a, b));
    g.add_po(g.mux_(a, b, c));
    g.add_po(g.maj_(a, b, c));
    g.check_integrity(Aig::CheckLevel::Strict);
    // Semantics verified via simulation in test_sim_cec; here check sharing:
    EXPECT_GT(g.num_ands(), 0u);
}

TEST(Aig, AndOrReduce) {
    Aig g;
    const auto pis = g.add_pis(5);
    const Lit all = g.and_reduce(pis);
    g.add_po(all);
    EXPECT_EQ(g.and_reduce(std::span<const Lit>{}), lit_true);
    EXPECT_EQ(g.or_reduce(std::span<const Lit>{}), lit_false);
    EXPECT_EQ(g.and_reduce(std::span<const Lit>(pis.data(), 1)), pis[0]);
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, TopoOrderRespectsFanins) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, lit_not(a));
    const Lit z = g.and_(y, x);
    g.add_po(z);
    const auto order = g.topo_ands();
    ASSERT_EQ(order.size(), 3u);
    std::vector<std::size_t> pos(g.num_slots(), 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
        pos[order[i]] = i + 1;
    }
    for (const Var v : order) {
        for (const Lit f : {g.fanin0(v), g.fanin1(v)}) {
            if (g.is_and(lit_var(f))) {
                EXPECT_LT(pos[lit_var(f)], pos[v]);
            }
        }
    }
}

TEST(Aig, LevelsAndDepth) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    const Lit z = g.and_(y, lit_not(x));
    g.add_po(z);
    EXPECT_EQ(g.depth(), 3u);
    EXPECT_EQ(g.level(lit_var(x)), 1u);
    EXPECT_EQ(g.level(lit_var(y)), 2u);
    EXPECT_EQ(g.level(lit_var(z)), 3u);
    EXPECT_EQ(g.level(lit_var(a)), 0u);
}

TEST(Aig, IsInTfi) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(y);
    EXPECT_TRUE(g.is_in_tfi(lit_var(y), lit_var(x)));
    EXPECT_TRUE(g.is_in_tfi(lit_var(y), lit_var(a)));
    EXPECT_TRUE(g.is_in_tfi(lit_var(y), lit_var(y)));
    EXPECT_FALSE(g.is_in_tfi(lit_var(x), lit_var(y)));
    EXPECT_FALSE(g.is_in_tfi(lit_var(x), lit_var(c)));
}

TEST(Aig, DeleteUnreferencedCone) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    // y has no references: deleting it must also free x.
    EXPECT_EQ(g.num_ands(), 2u);
    g.delete_unreferenced(lit_var(y));
    EXPECT_EQ(g.num_ands(), 0u);
    EXPECT_TRUE(g.is_dead(lit_var(y)));
    EXPECT_TRUE(g.is_dead(lit_var(x)));
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, DeleteStopsAtReferencedNodes) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    g.add_po(x);  // x stays alive through the PO
    g.delete_unreferenced(lit_var(y));
    EXPECT_TRUE(g.is_dead(lit_var(y)));
    EXPECT_FALSE(g.is_dead(lit_var(x)));
    EXPECT_EQ(g.num_ands(), 1u);
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, DeadNodeSlotIsReusedNever) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.delete_unreferenced(lit_var(x));
    const Lit y = g.and_(a, b);  // recreate the same structure
    EXPECT_NE(lit_var(y), lit_var(x)) << "tombstoned slots must not revive";
    g.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, CompactDropsTombstones) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit x = g.and_(a, b);
    const Lit y = g.and_(x, c);
    const Lit dead = g.and_(lit_not(a), c);
    g.add_po(y);
    g.delete_unreferenced(lit_var(dead));
    std::vector<Lit> map;
    const Aig h = g.compact(&map);
    EXPECT_EQ(h.num_ands(), 2u);
    EXPECT_EQ(h.num_pis(), 3u);
    EXPECT_EQ(h.num_pos(), 1u);
    EXPECT_EQ(h.num_slots(), 1 + 3 + 2);
    EXPECT_EQ(map[lit_var(dead)], null_lit);
    h.check_integrity(Aig::CheckLevel::Strict);
}

TEST(Aig, CompactPreservesPolarities) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(lit_not(a), b);
    g.add_po(lit_not(x));
    const Aig h = g.compact();
    ASSERT_EQ(h.num_pos(), 1u);
    EXPECT_TRUE(lit_is_compl(h.po(0)));
    const Var xv = lit_var(h.po(0));
    EXPECT_TRUE(lit_is_compl(h.fanin0(xv)) != lit_is_compl(h.fanin1(xv)));
}

TEST(Aig, PoRefsCount) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.add_po(x);
    g.add_po(lit_not(x));
    g.add_po(a);
    EXPECT_EQ(g.po_refs(lit_var(x)), 2u);
    EXPECT_EQ(g.po_refs(lit_var(a)), 1u);
    EXPECT_EQ(g.po_refs(lit_var(b)), 0u);
}

TEST(Aig, AddPoToDeadNodeThrows) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(a, b);
    g.delete_unreferenced(lit_var(x));
    EXPECT_THROW(g.add_po(x), bg::ContractViolation);
}

TEST(Aig, ToStringMentionsCounts) {
    Aig g;
    g.add_pis(3);
    const auto s = g.to_string();
    EXPECT_NE(s.find("pis=3"), std::string::npos);
}

}  // namespace
