#include <gtest/gtest.h>

#include <filesystem>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/flow.hpp"
#include "core/trainer.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "opt/balance.hpp"
#include "opt/standalone.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::OpKind;

/// A full synthesis script: generate -> rw -> b -> rs -> rf -> b, with
/// function preservation and monotone size at every step.
TEST(Integration, SynthesisScriptPreservesFunction) {
    for (const char* name : {"b09", "b10", "b08"}) {
        const Aig original = bg::circuits::make_benchmark_scaled(name, 0.4);
        Aig g = original;
        std::size_t last = g.num_ands();
        for (int round = 0; round < 2; ++round) {
            (void)bg::opt::standalone_pass(g, OpKind::Rewrite);
            (void)bg::opt::balance_in_place(g);
            (void)bg::opt::standalone_pass(g, OpKind::Resub);
            (void)bg::opt::standalone_pass(g, OpKind::Refactor);
            g.check_integrity();
            EXPECT_LE(g.num_ands(), last) << name;
            last = g.num_ands();
        }
        EXPECT_TRUE(likely_equivalent(original, g)) << name;
    }
}

TEST(Integration, OptimizedDesignSurvivesAllFormats) {
    const Aig original = bg::circuits::make_benchmark_scaled("b09", 0.5);
    Aig g = original;
    (void)bg::opt::standalone_pass(g, OpKind::Rewrite);

    const auto dir = std::filesystem::temp_directory_path();
    const auto p_aag = dir / "bg_int.aag";
    const auto p_aig = dir / "bg_int.aig";
    const auto p_bench = dir / "bg_int.bench";
    bg::io::write_aiger_file(g, p_aag);
    bg::io::write_aiger_binary_file(g, p_aig);
    bg::io::write_bench_file(g, p_bench);

    for (const auto& p : {p_aag, p_aig}) {
        const Aig back = bg::io::read_aiger_auto_file(p);
        EXPECT_TRUE(likely_equivalent(g, back)) << p;
    }
    const Aig via_bench = bg::io::read_bench_file(p_bench);
    EXPECT_TRUE(likely_equivalent(g, via_bench));
    for (const auto& p : {p_aag, p_aig, p_bench}) {
        std::filesystem::remove(p);
    }
}

TEST(Integration, TrainSaveReloadFlow) {
    // The deployment story: train on one machine, persist, reload, flow.
    const Aig design = bg::circuits::make_benchmark_scaled("b11", 0.25);
    const auto records = bg::core::generate_guided_samples(design, 40, 11);
    const auto ds = bg::core::build_dataset(design, records);

    bg::core::ModelConfig mc;
    mc.sage_dims = {16, 16, 8};
    mc.mlp_dims = {24, 8, 1};
    mc.dropout = 0.0F;
    bg::core::BoolGebraModel trained(mc);
    auto tc = bg::core::TrainConfig::quick();
    tc.epochs = 30;
    tc.batch_size = 10;
    (void)bg::core::train_model(trained, ds, tc);

    const auto path =
        std::filesystem::temp_directory_path() / "bg_int_model.bin";
    trained.save(path);
    bg::core::BoolGebraModel reloaded(mc);
    reloaded.load(path);
    std::filesystem::remove(path);

    bg::core::FlowConfig fc;
    fc.num_samples = 30;
    fc.top_k = 5;
    fc.seed = 3;
    const auto r1 = bg::core::run_flow(design, trained, fc);
    const auto r2 = bg::core::run_flow(design, reloaded, fc);
    EXPECT_EQ(r1.predictions, r2.predictions)
        << "persisted weights must reproduce the flow exactly";
    EXPECT_EQ(r1.reductions, r2.reductions);
}

TEST(Integration, FlowResultIsRealizable) {
    // The flow's BG-Best number must be achievable by actually running the
    // winning decision vector through Algorithm 1.
    const Aig design = bg::circuits::make_benchmark_scaled("b10", 0.5);
    const auto st = bg::core::compute_static_features(design);
    const auto decisions =
        bg::core::generate_decisions(design, 40, /*guided=*/true, 5, st);
    int best = 0;
    for (const auto& d : decisions) {
        const auto rec = bg::core::evaluate_decisions(design, d);
        best = std::max(best, rec.reduction);
        // Every candidate preserves the function.
        Aig g = design;
        auto copy = d;
        (void)bg::opt::orchestrate(g, copy);
        ASSERT_TRUE(likely_equivalent(design, g));
    }
    EXPECT_GT(best, 0);
}

TEST(Integration, CrossDesignFlowBeatsWorstStandalone) {
    // Train on b11, deploy on b09 (never seen): BG-Best should at least
    // beat the weakest stand-alone pass (the paper's margin claim, with a
    // generous bound suitable for the tiny quick model).
    const Aig train_design = bg::circuits::make_benchmark_scaled("b11", 0.25);
    const auto records =
        bg::core::generate_guided_samples(train_design, 48, 13);
    const auto ds = bg::core::build_dataset(train_design, records);
    bg::core::ModelConfig mc;
    mc.sage_dims = {16, 16, 8};
    mc.mlp_dims = {24, 8, 1};
    mc.dropout = 0.0F;
    bg::core::BoolGebraModel model(mc);
    auto tc = bg::core::TrainConfig::quick();
    tc.epochs = 40;
    tc.batch_size = 12;
    (void)bg::core::train_model(model, ds, tc);

    const Aig target = bg::circuits::make_benchmark_scaled("b09", 0.5);
    bg::core::FlowConfig fc;
    fc.num_samples = 60;
    fc.top_k = 8;
    fc.seed = 21;
    const auto flow = bg::core::run_flow(target, model, fc);

    int worst_standalone = INT32_MAX;
    for (const OpKind op :
         {OpKind::Rewrite, OpKind::Resub, OpKind::Refactor}) {
        Aig g = target;
        worst_standalone = std::min(
            worst_standalone, bg::opt::standalone_pass(g, op).reduction());
    }
    EXPECT_GE(flow.best_reduction, worst_standalone);
}

TEST(Integration, DecisionCsvDrivesReproducibleOrchestration) {
    const Aig design = bg::circuits::make_benchmark_scaled("b08", 0.5);
    bg::Rng rng(17);
    const auto d = bg::core::random_decisions(design, rng);
    const auto path =
        std::filesystem::temp_directory_path() / "bg_int_decisions.csv";
    bg::opt::save_decisions_csv(path, d);
    const auto loaded = bg::opt::load_decisions_csv(path);
    std::filesystem::remove(path);

    Aig g1 = design;
    Aig g2 = design;
    const auto r1 = bg::opt::orchestrate(g1, d);
    const auto r2 = bg::opt::orchestrate(g2, loaded);
    EXPECT_EQ(r1.final_size, r2.final_size);
    EXPECT_EQ(r1.applied, r2.applied);
    EXPECT_EQ(bg::io::write_aiger_string(g1), bg::io::write_aiger_string(g2));
}

TEST(Integration, DepthTrackingInOrchestration) {
    const Aig design = bg::circuits::make_benchmark_scaled("b10", 0.5);
    Aig g = design;
    const auto res =
        bg::opt::orchestrate(g, bg::opt::uniform_decisions(g, OpKind::Rewrite));
    EXPECT_EQ(res.original_depth, Aig(design).depth());
    EXPECT_EQ(res.final_depth, g.depth());
    EXPECT_GT(res.original_depth, 0u);
}

}  // namespace
