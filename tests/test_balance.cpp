#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "opt/balance.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::balance;
using bg::opt::balance_in_place;

TEST(Balance, ChainBecomesTree) {
    // a & (b & (c & d)): depth 3 -> balanced depth 2.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit d = g.add_pi();
    g.add_po(g.and_(a, g.and_(b, g.and_(c, d))));
    EXPECT_EQ(g.depth(), 3u);
    Aig h = balance(g);
    EXPECT_EQ(h.depth(), 2u);
    EXPECT_EQ(h.num_ands(), 3u);
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
}

TEST(Balance, LongChainLogDepth) {
    Aig g;
    const auto pis = g.add_pis(16);
    Lit acc = pis[0];
    for (std::size_t i = 1; i < pis.size(); ++i) {
        acc = g.and_(acc, pis[i]);  // left-leaning chain, depth 15
    }
    g.add_po(acc);
    EXPECT_EQ(g.depth(), 15u);
    Aig h = balance(g);
    EXPECT_EQ(h.depth(), 4u);  // ceil(log2(16))
    EXPECT_EQ(check_equivalence(g, h),
              CecVerdict::ProbablyEquivalent);  // 16 PIs > exhaustive limit
}

TEST(Balance, RespectsComplementBoundaries) {
    // !(a & b) & c is NOT a flat 3-AND; balancing must not flatten
    // through the complemented edge.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    g.add_po(g.and_(lit_not(g.and_(a, b)), c));
    Aig h = balance(g);
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
    EXPECT_EQ(h.num_ands(), 2u);
}

TEST(Balance, RespectsSharedNodes) {
    // A shared AND node must not be duplicated into both fanout trees.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit c = g.add_pi();
    const Lit d = g.add_pi();
    const Lit shared = g.and_(a, b);
    g.add_po(g.and_(shared, c));
    g.add_po(g.and_(shared, d));
    Aig h = balance(g);
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent);
    EXPECT_LE(h.num_ands(), g.num_ands());
}

TEST(Balance, PreservesFunctionOnRandomGraphs) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Aig g = bg::test::redundant_aig(8, 40, 4, seed);
        Aig h = balance(g);
        h.check_integrity();
        EXPECT_EQ(check_equivalence(g, h), CecVerdict::Equivalent)
            << "seed " << seed;
        EXPECT_LE(h.num_ands(), g.num_ands() + 2)
            << "balance should not grow the graph materially";
    }
}

TEST(Balance, InPlaceReportsDepthChange) {
    Aig g;
    const auto pis = g.add_pis(8);
    Lit acc = pis[0];
    for (std::size_t i = 1; i < pis.size(); ++i) {
        acc = g.and_(acc, pis[i]);
    }
    g.add_po(acc);
    const int gained = balance_in_place(g);
    EXPECT_EQ(gained, 7 - 3);
    EXPECT_EQ(g.depth(), 3u);
}

TEST(Balance, IdempotentOnBalancedTrees) {
    Aig g;
    const auto pis = g.add_pis(8);
    g.add_po(g.and_reduce(pis));  // already balanced
    Aig h = balance(g);
    EXPECT_EQ(h.depth(), g.depth());
    EXPECT_EQ(h.num_ands(), g.num_ands());
}

TEST(Balance, RegistryDesignsReduceOrKeepDepth) {
    for (const char* name : {"b09", "b10"}) {
        const Aig g = bg::circuits::make_benchmark_scaled(name, 0.4);
        Aig copy = g;
        const auto before = copy.depth();
        Aig h = balance(g);
        EXPECT_LE(h.depth(), before) << name;
        EXPECT_TRUE(likely_equivalent(g, h)) << name;
    }
}

TEST(Balance, ConstantAndPassthroughOutputs) {
    Aig g;
    const Lit a = g.add_pi();
    g.add_po(lit_false);
    g.add_po(lit_not(a));
    Aig h = balance(g);
    EXPECT_EQ(h.po(0), lit_false);
    EXPECT_EQ(h.po(1), lit_not(make_lit(h.pi(0))));
}

}  // namespace
