#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "circuits/generators.hpp"
#include "circuits/registry.hpp"
#include "io/aiger.hpp"
#include "opt/standalone.hpp"

namespace {

using namespace bg::circuits;  // NOLINT: test brevity
using bg::aig::Aig;

TEST(Generators, Deterministic) {
    GeneratorParams p;
    p.num_pis = 16;
    p.target_ands = 120;
    p.seed = 42;
    const Aig a = generate_circuit(p);
    const Aig b = generate_circuit(p);
    EXPECT_EQ(bg::io::write_aiger_string(a), bg::io::write_aiger_string(b));
}

TEST(Generators, DifferentSeedsDiffer) {
    GeneratorParams p;
    p.num_pis = 16;
    p.target_ands = 120;
    p.seed = 1;
    const Aig a = generate_circuit(p);
    p.seed = 2;
    const Aig b = generate_circuit(p);
    EXPECT_NE(bg::io::write_aiger_string(a), bg::io::write_aiger_string(b));
}

TEST(Generators, HitsTargetSizeApproximately) {
    for (const std::size_t target : {100UL, 300UL, 700UL}) {
        GeneratorParams p;
        p.num_pis = 24;
        p.target_ands = target;
        p.seed = 7;
        const Aig g = generate_circuit(p);
        EXPECT_GE(g.num_ands(), target * 7 / 10)
            << "target " << target << " got " << g.num_ands();
        EXPECT_LE(g.num_ands(), target * 13 / 10)
            << "target " << target << " got " << g.num_ands();
    }
}

TEST(Generators, GraphIsCleanAndCompact) {
    GeneratorParams p;
    p.num_pis = 20;
    p.target_ands = 200;
    p.seed = 3;
    const Aig g = generate_circuit(p);
    g.check_integrity();
    EXPECT_EQ(g.num_slots(), 1 + g.num_pis() + g.num_ands())
        << "generator must return a compacted graph";
    EXPECT_GT(g.num_pos(), 0u);
    EXPECT_LE(g.num_pos(), p.max_pos);
}

TEST(Generators, ContainsOptimizationOpportunities) {
    // The point of the stand-ins: each op must find work, and the total
    // reduction should be a few percent like the paper's designs.
    GeneratorParams p;
    p.num_pis = 24;
    p.target_ands = 300;
    p.seed = 11;
    for (const auto family : {Family::Control, Family::Arithmetic}) {
        p.family = family;
        const Aig base = generate_circuit(p);
        for (const auto op :
             {bg::opt::OpKind::Rewrite, bg::opt::OpKind::Resub,
              bg::opt::OpKind::Refactor}) {
            Aig g = base;
            const auto res = bg::opt::standalone_pass(g, op);
            EXPECT_GT(res.reduction(), 0)
                << bg::opt::to_string(op) << " found nothing to do";
            g.check_integrity();
        }
    }
}

TEST(Generators, OptimizationPreservesFunction) {
    GeneratorParams p;
    p.num_pis = 12;  // small enough for exhaustive CEC
    p.target_ands = 150;
    p.seed = 19;
    const Aig base = generate_circuit(p);
    Aig g = base;
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Rewrite);
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Resub);
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Refactor);
    EXPECT_EQ(bg::aig::check_equivalence(base, g),
              bg::aig::CecVerdict::Equivalent);
}

TEST(Registry, AllPaperDesignsPresent) {
    const auto names = benchmark_names();
    const std::vector<std::string> expected{"b07", "b08", "b09", "b10",
                                            "b11", "b12", "c2670", "c5315"};
    EXPECT_EQ(names, expected);
}

TEST(Registry, InfoMatchesPaperSizes) {
    EXPECT_EQ(benchmark_info("b07").target_ands, 366u);
    EXPECT_EQ(benchmark_info("b10").target_ands, 180u);
    EXPECT_EQ(benchmark_info("b12").target_ands, 1002u);
    EXPECT_EQ(benchmark_info("c2670").family, Family::Arithmetic);
    EXPECT_THROW((void)benchmark_info("c9999"), std::out_of_range);
}

TEST(Registry, MakeBenchmarkSizes) {
    // Spot-check two designs (the full set is exercised by benches).
    const Aig b10 = make_benchmark("b10");
    EXPECT_GE(b10.num_ands(), 120u);
    EXPECT_LE(b10.num_ands(), 260u);
    const Aig b08 = make_benchmark("b08");
    EXPECT_GE(b08.num_ands(), 110u);
    EXPECT_LE(b08.num_ands(), 240u);
}

TEST(Registry, ScaledBenchmarksShrink) {
    const Aig full = make_benchmark("b10");
    const Aig half = make_benchmark_scaled("b10", 0.5);
    EXPECT_LT(half.num_ands(), full.num_ands());
    EXPECT_GE(half.num_ands(), 60u);
}

}  // namespace
