#include <gtest/gtest.h>

#include <algorithm>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "core/flow.hpp"
#include "core/flow_service.hpp"
#include "opt/balance.hpp"
#include "opt/lut_map.hpp"
#include "opt/objective.hpp"
#include "opt/standalone.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::core::FlowConfig;
using bg::core::run_flow;
using bg::opt::CostVector;
using bg::opt::DepthObjective;
using bg::opt::Gain;
using bg::opt::make_objective;
using bg::opt::MappedLutObjective;
using bg::opt::ObjectiveKind;
using bg::opt::OpKind;
using bg::opt::SizeObjective;
using bg::opt::WeightedObjective;

TEST(ObjectiveFactory, ParsesEverySpec) {
    EXPECT_EQ(make_objective("size")->kind(), ObjectiveKind::Size);
    EXPECT_EQ(make_objective("depth")->kind(), ObjectiveKind::Depth);
    EXPECT_EQ(make_objective("luts")->kind(), ObjectiveKind::MappedLuts);
    EXPECT_EQ(make_objective("weighted:1,0.5")->kind(),
              ObjectiveKind::Weighted);
    // Names round-trip through the factory.
    for (const char* spec : {"size", "depth", "luts", "weighted:1,0.5"}) {
        EXPECT_EQ(make_objective(make_objective(spec)->name())->name(),
                  make_objective(spec)->name());
    }
    const auto luts4 = make_objective("luts:4");
    EXPECT_EQ(dynamic_cast<const MappedLutObjective&>(*luts4)
                  .lut_params()
                  .k,
              4u);
}

TEST(ObjectiveFactory, RejectsBadSpecs) {
    EXPECT_THROW((void)make_objective("area"), std::invalid_argument);
    EXPECT_THROW((void)make_objective(""), std::invalid_argument);
    EXPECT_THROW((void)make_objective("weighted:1"), std::invalid_argument);
    EXPECT_THROW((void)make_objective("weighted:a,b"),
                 std::invalid_argument);
    EXPECT_THROW((void)make_objective("weighted:-1,2"),
                 std::invalid_argument);
    EXPECT_THROW((void)make_objective("weighted:0,0"),
                 std::invalid_argument);
    EXPECT_THROW((void)make_objective("weighted:,2"),
                 std::invalid_argument);
    EXPECT_THROW((void)make_objective("luts:1"), std::invalid_argument);
    EXPECT_THROW((void)make_objective("luts:99"), std::invalid_argument);
    // map_to_luts itself only supports K in [2, 8]: the parser must
    // reject the rest up front, not let the first flow blow up later.
    EXPECT_THROW((void)make_objective("luts:9"), std::invalid_argument);
    EXPECT_THROW((void)make_objective("luts:10"), std::invalid_argument);
    EXPECT_THROW((void)make_objective("luts:"), std::invalid_argument);
    EXPECT_THROW((void)make_objective("luts:4.5"), std::invalid_argument);
}

TEST(Objective, MeasureReportsSizeDepthAndScalar) {
    // Chain of 4 ANDs: size 4, depth 4 (a&b&c&d&e built left-deep).
    Aig g;
    Lit acc = g.add_pi();
    for (int i = 0; i < 4; ++i) {
        acc = g.and_(acc, g.add_pi());
    }
    g.add_po(acc);

    const auto size_cost = SizeObjective{}.measure(g);
    EXPECT_EQ(size_cost.size, 4u);
    EXPECT_EQ(size_cost.depth, 4u);
    EXPECT_DOUBLE_EQ(size_cost.value, 4.0);

    const auto depth_cost = DepthObjective{}.measure(g);
    EXPECT_DOUBLE_EQ(depth_cost.value, 4.0);

    const auto wcost = WeightedObjective{2.0, 0.5}.measure(g);
    EXPECT_DOUBLE_EQ(wcost.value, 2.0 * 4 + 0.5 * 4);

    const auto lcost = MappedLutObjective{}.measure(g);
    EXPECT_EQ(lcost.size, 4u);
    EXPECT_DOUBLE_EQ(
        lcost.value,
        static_cast<double>(bg::opt::map_to_luts(g).num_luts()));

    // measure() is const-safe on shared graphs.
    const Aig& shared = g;
    EXPECT_EQ(SizeObjective{}.measure(shared).depth, 4u);
}

TEST(Objective, Comparators) {
    const CostVector small{10.0, 10, 7};
    const CostVector big{20.0, 20, 5};
    const SizeObjective size;
    EXPECT_TRUE(size.better(small, big));
    EXPECT_FALSE(size.better(big, small));
    EXPECT_FALSE(size.better(small, small));  // strict

    const DepthObjective depth;
    EXPECT_TRUE(depth.better(big, small)) << "depth 5 beats depth 7";
    EXPECT_FALSE(depth.better(small, big));
    // Size is the tiebreak at equal depth.
    EXPECT_TRUE(depth.better(CostVector{5.0, 8, 5}, big));
    EXPECT_FALSE(depth.better(big, big));

    const WeightedObjective weighted{1.0, 10.0};
    // 10 + 70 = 80 vs 20 + 50 = 70: the shallower graph wins.
    EXPECT_TRUE(weighted.better(
        CostVector{weighted.scalar(20, 5), 20, 5},
        CostVector{weighted.scalar(10, 7), 10, 7}));
}

TEST(Objective, LocalGainAndAccepts) {
    const Gain smaller_deeper{3, -2};
    const Gain neutral_shallower{0, 1};
    const SizeObjective size;
    EXPECT_DOUBLE_EQ(size.local_gain(smaller_deeper), 3.0);
    EXPECT_TRUE(size.accepts(smaller_deeper));
    EXPECT_TRUE(size.accepts(neutral_shallower));

    const DepthObjective depth;
    EXPECT_DOUBLE_EQ(depth.local_gain(smaller_deeper), -2.0);
    EXPECT_FALSE(depth.accepts(smaller_deeper))
        << "depth objective must veto size wins that deepen the graph";
    EXPECT_TRUE(depth.accepts(neutral_shallower));

    const WeightedObjective weighted{1.0, 2.0};
    EXPECT_DOUBLE_EQ(weighted.local_gain(smaller_deeper), 3.0 - 4.0);
    EXPECT_FALSE(weighted.accepts(smaller_deeper));
}

TEST(Objective, DepthGatedPassNeverDeepens) {
    for (const std::uint64_t seed : {3ULL, 7ULL, 19ULL}) {
        Aig g = bg::test::redundant_aig(8, 40, 4, seed);
        const Aig original = g;
        const std::uint32_t depth_before = g.depth();
        const auto res = bg::opt::standalone_pass(
            g, OpKind::Rewrite, {}, DepthObjective{});
        g.check_integrity();
        EXPECT_EQ(res.original_depth, depth_before);
        EXPECT_EQ(res.final_depth, g.depth());
        EXPECT_LE(res.final_depth, res.original_depth)
            << "seed " << seed
            << ": depth-gated rewrites must not deepen the graph";
        EXPECT_EQ(check_equivalence(original, g), CecVerdict::Equivalent);
    }
}

// -- depth tracking (OrchestrationResult::depth_reduction) -----------------

TEST(DepthTracking, BalanceThenRewriteSequence) {
    // A left-deep 8-input AND chain: depth 7.  balance() rebuilds it as a
    // tree of depth 3; a rewrite orchestration of the balanced graph must
    // report its own depth delta against the balanced entry state.
    Aig g;
    Lit acc = g.add_pi();
    for (int i = 0; i < 7; ++i) {
        acc = g.and_(acc, g.add_pi());
    }
    g.add_po(acc);
    ASSERT_EQ(g.depth(), 7u);

    const int balance_delta = bg::opt::balance_in_place(g);
    EXPECT_EQ(balance_delta, 7 - 3);
    ASSERT_EQ(g.depth(), 3u);

    const auto res = bg::opt::standalone_pass(g, OpKind::Rewrite);
    EXPECT_EQ(res.original_depth, 3u);
    EXPECT_EQ(res.final_depth, g.depth());
    EXPECT_EQ(res.depth_reduction(),
              3 - static_cast<int>(res.final_depth));
}

TEST(DepthTracking, MuxCollapseDropsMeasuredDepth) {
    // f = c a + !c a == a: rewriting the root leaves a bare PI, so the
    // orchestration must report original depth 2 and final depth 0.
    Aig g;
    const Lit c = g.add_pi();
    const Lit a = g.add_pi();
    const Lit f = g.or_(g.and_(c, a), g.and_(lit_not(c), a));
    g.add_po(f);
    ASSERT_EQ(g.depth(), 2u);

    auto d = bg::opt::uniform_decisions(g, OpKind::Rewrite);
    const auto res = bg::opt::orchestrate(g, d);
    EXPECT_EQ(res.original_size, 3u);
    EXPECT_EQ(res.final_size, 0u);
    EXPECT_EQ(res.original_depth, 2u);
    EXPECT_EQ(res.final_depth, 0u);
    EXPECT_EQ(res.depth_reduction(), 2);
    EXPECT_EQ(res.reduction(), 3);
}

TEST(DepthTracking, SampleRecordCarriesDepth) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.3);
    const auto records = bg::core::generate_guided_samples(g, 4, 11);
    Aig probe = g;
    const std::uint32_t depth_before = probe.depth();
    for (const auto& rec : records) {
        EXPECT_EQ(rec.depth_reduction,
                  static_cast<int>(depth_before) -
                      static_cast<int>(rec.final_depth));
    }
}

// -- end-to-end flows under non-size objectives ----------------------------

bg::core::BoolGebraModel quick_model() {
    bg::core::ModelConfig cfg = bg::core::ModelConfig::quick();
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.seed = 31;
    return bg::core::BoolGebraModel(cfg);
}

FlowConfig quick_flow_config() {
    FlowConfig fc;
    fc.num_samples = 24;
    fc.top_k = 6;
    fc.seed = 5;
    return fc;
}

TEST(ObjectiveFlow, DepthFlowRunsOnRegistryDesigns) {
    const auto model = quick_model();
    for (const char* name : {"b07", "b10", "b08"}) {
        const Aig g = bg::circuits::make_benchmark_scaled(name, 0.3);
        FlowConfig fc = quick_flow_config();
        fc.objective = make_objective("depth");
        const auto res = run_flow(g, model, fc);
        EXPECT_EQ(res.objective, "depth") << name;
        ASSERT_EQ(res.costs.size(), res.selected.size()) << name;
        EXPECT_EQ(res.original_depth, res.original_cost.depth) << name;
        EXPECT_GT(res.original_depth, 0u) << name;
        EXPECT_GT(res.bg_best_depth_ratio, 0.0) << name;
        EXPECT_LE(res.bg_best_depth_ratio, 1.0) << name;
        EXPECT_GE(res.bg_mean_depth_ratio, res.bg_best_depth_ratio -
                                               1e-12)
            << name;

        const DepthObjective depth;
        // The committed best must be comparator-minimal over the
        // evaluated set (first strictly-better wins).
        for (const auto& cost : res.costs) {
            EXPECT_FALSE(depth.better(cost, res.best_cost)) << name;
        }
        // The acceptance property: whenever the size-only ranking prefers
        // some candidate (strictly more AND reduction) but the depth
        // comparator disagrees, the depth flow must not have selected the
        // size favourite.
        std::size_t size_best = 0;
        for (std::size_t i = 1; i < res.reductions.size(); ++i) {
            if (res.reductions[i] > res.reductions[size_best]) {
                size_best = i;
            }
        }
        bool disagreement = false;
        for (const auto& cost : res.costs) {
            if (depth.better(cost, res.costs[size_best])) {
                disagreement = true;
            }
        }
        if (disagreement) {
            EXPECT_TRUE(depth.better(res.best_cost, res.costs[size_best]))
                << name << ": depth flow selected the size favourite even "
                           "though the depth comparator disagrees";
        }
    }
}

TEST(ObjectiveFlow, LutFlowRunsOnRegistryDesigns) {
    const auto model = quick_model();
    for (const char* name : {"b07", "b10", "b11"}) {
        const Aig g = bg::circuits::make_benchmark_scaled(name, 0.25);
        FlowConfig fc = quick_flow_config();
        fc.objective = make_objective("luts:4");
        const auto res = run_flow(g, model, fc);
        EXPECT_EQ(res.objective, "luts") << name;
        bg::opt::LutMapParams lp;
        lp.k = 4;
        EXPECT_DOUBLE_EQ(
            res.original_cost.value,
            static_cast<double>(bg::opt::map_to_luts(g, lp).num_luts()))
            << name;
        EXPECT_GT(res.bg_best_value_ratio, 0.0) << name;
        EXPECT_LE(res.bg_best_value_ratio, 1.0 + 1e-12) << name;
        const MappedLutObjective luts{lp};
        for (const auto& cost : res.costs) {
            EXPECT_GT(cost.value, 0.0) << name;
            EXPECT_FALSE(luts.better(cost, res.best_cost)) << name;
        }
    }
}

TEST(ObjectiveFlow, WeightedFlowReportsBothMetrics) {
    const auto model = quick_model();
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.3);
    FlowConfig fc = quick_flow_config();
    fc.objective = make_objective("weighted:1,2");
    const auto res = run_flow(g, model, fc);
    EXPECT_EQ(res.objective, "weighted:1,2");
    ASSERT_FALSE(res.costs.empty());
    for (const auto& cost : res.costs) {
        EXPECT_DOUBLE_EQ(cost.value,
                         static_cast<double>(cost.size) +
                             2.0 * static_cast<double>(cost.depth));
    }
}

TEST(ObjectiveFlow, ServiceCarriesObjectiveEndToEnd) {
    // ServiceConfig.flow.objective must reach every served job: the same
    // job submitted to a depth-configured service reproduces a sequential
    // depth run_design_flow bit for bit.
    bg::core::ServiceConfig scfg;
    scfg.workers = 2;
    scfg.flow = quick_flow_config();
    scfg.flow.objective = make_objective("depth");
    auto model = std::make_shared<bg::core::BoolGebraModel>(quick_model());
    bg::core::FlowService service(scfg, model);

    bg::core::DesignJob job{
        "b10", bg::circuits::make_benchmark_scaled("b10", 0.3)};
    const auto served = service.submit(job).get();
    service.stop();

    EXPECT_EQ(served.flow.objective, "depth");
    const auto direct = bg::core::run_design_flow(job, *model, scfg.flow,
                                                  scfg.rounds, nullptr);
    EXPECT_EQ(served.flow.predictions, direct.flow.predictions);
    EXPECT_EQ(served.flow.selected, direct.flow.selected);
    EXPECT_EQ(served.flow.best_cost.depth, direct.flow.best_cost.depth);
    EXPECT_EQ(served.flow.bg_best_depth_ratio,
              direct.flow.bg_best_depth_ratio);
}

TEST(ObjectiveFlow, IteratedDepthFlowNeverDeepens) {
    const auto model = quick_model();
    const Aig g = bg::circuits::make_benchmark_scaled("b07", 0.3);
    FlowConfig fc = quick_flow_config();
    fc.objective = make_objective("depth");
    const auto res = bg::core::run_iterated_flow(g, model, fc, 2);
    EXPECT_EQ(res.original_depth, g.depth());
    EXPECT_LE(res.final_depth, res.original_depth);
    EXPECT_LE(res.final_depth_ratio, 1.0 + 1e-12);
}

}  // namespace
