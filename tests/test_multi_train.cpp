#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/model.hpp"
#include "core/sampling.hpp"
#include "core/trainer.hpp"
#include "util/stats.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

ModelConfig tiny_config() {
    ModelConfig cfg;
    cfg.sage_dims = {16, 16, 8};
    cfg.mlp_dims = {24, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 31;
    return cfg;
}

Dataset design_dataset(const char* name, std::size_t n, std::uint64_t seed) {
    const auto g = bg::circuits::make_benchmark_scaled(name, 0.35);
    const auto records = generate_guided_samples(g, n, seed);
    return build_dataset(g, records);
}

TEST(MultiTrain, LossDecreasesAcrossDesigns) {
    const Dataset d1 = design_dataset("b09", 40, 3);
    const Dataset d2 = design_dataset("b10", 40, 4);
    const Dataset* sets[] = {&d1, &d2};
    BoolGebraModel model(tiny_config());
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 60;
    cfg.batch_size = 10;
    cfg.eval_every = 10;
    const auto res = train_model_multi(model, sets, cfg);
    ASSERT_GE(res.combined.history.size(), 2u);
    EXPECT_LT(res.combined.final_test_loss,
              res.combined.history.front().test_loss)
        << "multi-design training must reduce the averaged test loss";
    ASSERT_EQ(res.per_design_test.size(), 2u);
}

TEST(MultiTrain, HandlesDifferentGraphSizes) {
    // Designs of different node counts in one run (per-batch graphs).
    const Dataset d1 = design_dataset("b08", 24, 5);
    const Dataset d2 = design_dataset("b12", 24, 6);
    EXPECT_NE(d1.num_nodes(), d2.num_nodes());
    const Dataset* sets[] = {&d1, &d2};
    BoolGebraModel model(tiny_config());
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 10;
    cfg.batch_size = 8;
    const auto res = train_model_multi(model, sets, cfg);
    EXPECT_GT(res.combined.history.size(), 0u);
}

TEST(MultiTrain, SingleDatasetMatchesShape) {
    const Dataset d1 = design_dataset("b09", 32, 7);
    const Dataset* sets[] = {&d1};
    BoolGebraModel model(tiny_config());
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 12;
    cfg.eval_every = 4;
    const auto res = train_model_multi(model, sets, cfg);
    EXPECT_EQ(res.per_design_test.size(), 1u);
    // Epochs 0,4,8,11 recorded.
    EXPECT_EQ(res.combined.history.size(), 4u);
}

TEST(MultiTrain, EmptyInputThrows) {
    BoolGebraModel model(tiny_config());
    EXPECT_THROW(
        (void)train_model_multi(model, std::span<const Dataset* const>{}),
        bg::ContractViolation);
}

TEST(MultiTrain, ImprovesWorstCaseOverSingleDesignTraining) {
    // Train on b09 only vs on {b09, b10}; the multi-trained model should
    // not be dramatically worse on b10 than the b09-only model is.
    const Dataset d1 = design_dataset("b09", 40, 8);
    const Dataset d2 = design_dataset("b10", 40, 9);
    TrainConfig cfg = TrainConfig::quick();
    cfg.epochs = 60;
    cfg.batch_size = 10;

    BoolGebraModel single(tiny_config());
    (void)train_model(single, d1, cfg);
    const auto idx2 = [&] {
        std::vector<std::size_t> v(d2.size());
        for (std::size_t i = 0; i < v.size(); ++i) {
            v[i] = i;
        }
        return v;
    }();
    const double single_on_d2 = evaluate_loss(single, d2, idx2);

    BoolGebraModel multi(tiny_config());
    const Dataset* sets[] = {&d1, &d2};
    (void)train_model_multi(multi, sets, cfg);
    const double multi_on_d2 = evaluate_loss(multi, d2, idx2);

    EXPECT_LT(multi_on_d2, single_on_d2 + 0.05)
        << "seeing b10 during training should not hurt b10 inference";
}

}  // namespace
