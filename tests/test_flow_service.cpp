/// \file test_flow_service.cpp
/// The long-lived FlowService: model hot-swap binds snapshots at submit
/// time, drain/stop quiesce under concurrent producers, and the const
/// eval-mode inference path lets many threads share one model instance
/// bit-identically.  This suite runs under the TSan CI job — it is the
/// race-proof of the shared-snapshot design.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "core/flow_service.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

ModelConfig tiny_config(std::uint64_t seed = 21) {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = seed;
    return cfg;
}

FlowConfig tiny_flow() {
    FlowConfig fc;
    fc.num_samples = 24;
    fc.top_k = 4;
    fc.seed = 11;
    return fc;
}

ServiceConfig tiny_service(std::size_t workers = 2) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.flow = tiny_flow();
    return cfg;
}

std::vector<DesignJob> tiny_jobs() {
    std::vector<DesignJob> jobs;
    for (const char* name : {"b07", "b08", "b09", "b10"}) {
        jobs.push_back({name, bg::circuits::make_benchmark_scaled(name, 0.3)});
    }
    return jobs;
}

void expect_same_flow(const FlowResult& got, const FlowResult& want) {
    EXPECT_EQ(got.predictions, want.predictions);
    EXPECT_EQ(got.selected, want.selected);
    EXPECT_EQ(got.reductions, want.reductions);
    EXPECT_EQ(got.best_reduction, want.best_reduction);
    EXPECT_EQ(got.bg_best_ratio, want.bg_best_ratio);
    EXPECT_EQ(got.bg_mean_ratio, want.bg_mean_ratio);
    EXPECT_EQ(got.best_decisions, want.best_decisions);
}

TEST(FlowService, ServesJobsBitIdenticalToSequentialFlow) {
    const auto jobs = tiny_jobs();
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_config());

    std::vector<FlowResult> reference;
    for (const auto& job : jobs) {
        reference.push_back(run_flow(job.design, *model, tiny_flow()));
    }

    FlowService service(tiny_service(), model);
    auto futures = service.submit_batch(tiny_jobs());
    ASSERT_EQ(futures.size(), jobs.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        const auto got = futures[i].get();
        EXPECT_EQ(got.name, jobs[i].name);
        expect_same_flow(got.flow, reference[i]);
    }
}

TEST(FlowService, HotSwapMidStreamBindsSnapshotAtSubmit) {
    const auto jobs = tiny_jobs();
    const auto model_a =
        std::make_shared<const BoolGebraModel>(tiny_config(21));
    const auto model_b =
        std::make_shared<const BoolGebraModel>(tiny_config(9177));

    std::vector<FlowResult> ref_a;
    std::vector<FlowResult> ref_b;
    for (const auto& job : jobs) {
        ref_a.push_back(run_flow(job.design, *model_a, tiny_flow()));
        ref_b.push_back(run_flow(job.design, *model_b, tiny_flow()));
    }

    FlowService service(tiny_service(), model_a);
    // First wave on A; swap while those jobs are (potentially) in flight;
    // second wave on B.  Every job must finish on the snapshot it was
    // bound to at submit time.
    auto wave_a = service.submit_batch(tiny_jobs());
    service.swap_model(model_b);
    auto wave_b = service.submit_batch(tiny_jobs());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        expect_same_flow(wave_a[i].get().flow, ref_a[i]);
        expect_same_flow(wave_b[i].get().flow, ref_b[i]);
    }
    const auto st = service.stats();
    EXPECT_EQ(st.model_swaps, 1u);
    EXPECT_EQ(st.jobs_completed, 2 * jobs.size());
    EXPECT_EQ(service.model_snapshot(), model_b);
}

TEST(FlowService, DrainUnderConcurrentProducers) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(), model);

    constexpr std::size_t kProducers = 3;
    constexpr std::size_t kJobsEach = 4;
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&service, p] {
            const auto design =
                bg::circuits::make_benchmark_scaled("b09", 0.3);
            for (std::size_t j = 0; j < kJobsEach; ++j) {
                (void)service.submit(
                    {"p" + std::to_string(p) + "-" + std::to_string(j),
                     design});
            }
        });
    }
    for (auto& t : producers) {
        t.join();
    }
    service.drain();

    const auto st = service.stats();
    EXPECT_EQ(st.jobs_submitted, kProducers * kJobsEach);
    EXPECT_EQ(st.jobs_completed, kProducers * kJobsEach);
    EXPECT_EQ(st.jobs_pending, 0u);
    EXPECT_EQ(st.samples_run,
              kProducers * kJobsEach * tiny_flow().num_samples);
    EXPECT_GT(st.p50_latency_seconds, 0.0);
    EXPECT_GE(st.p95_latency_seconds, st.p50_latency_seconds);
    EXPECT_GT(st.samples_per_second, 0.0);
}

TEST(FlowService, StopRejectsNewSubmissions) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);
    auto fut =
        service.submit({"b09", bg::circuits::make_benchmark_scaled("b09", 0.3)});
    service.stop();
    EXPECT_FALSE(service.accepting());
    (void)fut.get();  // submitted-before-stop job still completes
    EXPECT_THROW(
        (void)service.submit(
            {"b09", bg::circuits::make_benchmark_scaled("b09", 0.3)}),
        std::runtime_error);
    EXPECT_EQ(service.stats().jobs_completed, 1u);
}

TEST(FlowService, SubmitWithoutModelThrows) {
    FlowService service(tiny_service(1));
    EXPECT_THROW(
        (void)service.submit(
            {"b09", bg::circuits::make_benchmark_scaled("b09", 0.3)}),
        std::invalid_argument);
}

// The soundness core of the shared-snapshot design: eval-mode inference
// is genuinely const, so two threads running the flow on ONE model
// instance produce the sequential results bit for bit (and TSan-clean).
TEST(FlowService, SharedModelConcurrentInferenceMatchesSequential) {
    const auto design = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const BoolGebraModel model{tiny_config()};
    const FlowResult want = run_flow(design, model, tiny_flow());

    FlowResult got_a;
    FlowResult got_b;
    std::thread ta([&] { got_a = run_flow(design, model, tiny_flow()); });
    std::thread tb([&] { got_b = run_flow(design, model, tiny_flow()); });
    ta.join();
    tb.join();
    expect_same_flow(got_a, want);
    expect_same_flow(got_b, want);
}

}  // namespace
