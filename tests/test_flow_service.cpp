/// \file test_flow_service.cpp
/// The long-lived FlowService: model hot-swap binds snapshots at submit
/// time, drain/stop quiesce under concurrent producers, and the const
/// eval-mode inference path lets many threads share one model instance
/// bit-identically.  This suite runs under the TSan CI job — it is the
/// race-proof of the shared-snapshot design.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "core/flow_service.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

ModelConfig tiny_config(std::uint64_t seed = 21) {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = seed;
    return cfg;
}

FlowConfig tiny_flow() {
    FlowConfig fc;
    fc.num_samples = 24;
    fc.top_k = 4;
    fc.seed = 11;
    return fc;
}

ServiceConfig tiny_service(std::size_t workers = 2) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.flow = tiny_flow();
    return cfg;
}

std::vector<DesignJob> tiny_jobs() {
    std::vector<DesignJob> jobs;
    for (const char* name : {"b07", "b08", "b09", "b10"}) {
        jobs.push_back({name, bg::circuits::make_benchmark_scaled(name, 0.3)});
    }
    return jobs;
}

void expect_same_flow(const FlowResult& got, const FlowResult& want) {
    EXPECT_EQ(got.predictions, want.predictions);
    EXPECT_EQ(got.selected, want.selected);
    EXPECT_EQ(got.reductions, want.reductions);
    EXPECT_EQ(got.best_reduction, want.best_reduction);
    EXPECT_EQ(got.bg_best_ratio, want.bg_best_ratio);
    EXPECT_EQ(got.bg_mean_ratio, want.bg_mean_ratio);
    EXPECT_EQ(got.best_decisions, want.best_decisions);
}

TEST(FlowService, ServesJobsBitIdenticalToSequentialFlow) {
    const auto jobs = tiny_jobs();
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_config());

    std::vector<FlowResult> reference;
    for (const auto& job : jobs) {
        reference.push_back(run_flow(job.design, *model, tiny_flow()));
    }

    FlowService service(tiny_service(), model);
    auto futures = service.submit_batch(tiny_jobs());
    ASSERT_EQ(futures.size(), jobs.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        const auto got = futures[i].get();
        EXPECT_EQ(got.name, jobs[i].name);
        expect_same_flow(got.flow, reference[i]);
    }
}

TEST(FlowService, HotSwapMidStreamBindsSnapshotAtSubmit) {
    const auto jobs = tiny_jobs();
    const auto model_a =
        std::make_shared<const BoolGebraModel>(tiny_config(21));
    const auto model_b =
        std::make_shared<const BoolGebraModel>(tiny_config(9177));

    std::vector<FlowResult> ref_a;
    std::vector<FlowResult> ref_b;
    for (const auto& job : jobs) {
        ref_a.push_back(run_flow(job.design, *model_a, tiny_flow()));
        ref_b.push_back(run_flow(job.design, *model_b, tiny_flow()));
    }

    FlowService service(tiny_service(), model_a);
    // First wave on A; swap while those jobs are (potentially) in flight;
    // second wave on B.  Every job must finish on the snapshot it was
    // bound to at submit time.
    auto wave_a = service.submit_batch(tiny_jobs());
    service.swap_model(model_b);
    auto wave_b = service.submit_batch(tiny_jobs());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        expect_same_flow(wave_a[i].get().flow, ref_a[i]);
        expect_same_flow(wave_b[i].get().flow, ref_b[i]);
    }
    const auto st = service.stats();
    EXPECT_EQ(st.model_swaps, 1u);
    EXPECT_EQ(st.jobs_completed, 2 * jobs.size());
    EXPECT_EQ(service.model_snapshot(), model_b);
}

TEST(FlowService, DrainUnderConcurrentProducers) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(), model);

    constexpr std::size_t kProducers = 3;
    constexpr std::size_t kJobsEach = 4;
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&service, p] {
            const auto design =
                bg::circuits::make_benchmark_scaled("b09", 0.3);
            for (std::size_t j = 0; j < kJobsEach; ++j) {
                (void)service.submit(
                    {"p" + std::to_string(p) + "-" + std::to_string(j),
                     design});
            }
        });
    }
    for (auto& t : producers) {
        t.join();
    }
    service.drain();

    const auto st = service.stats();
    EXPECT_EQ(st.jobs_submitted, kProducers * kJobsEach);
    EXPECT_EQ(st.jobs_completed, kProducers * kJobsEach);
    EXPECT_EQ(st.jobs_pending, 0u);
    EXPECT_EQ(st.samples_run,
              kProducers * kJobsEach * tiny_flow().num_samples);
    EXPECT_GT(st.p50_latency_seconds, 0.0);
    EXPECT_GE(st.p95_latency_seconds, st.p50_latency_seconds);
    EXPECT_GT(st.samples_per_second, 0.0);
}

TEST(FlowService, StopRejectsNewSubmissions) {
    const auto model =
        std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);
    auto fut =
        service.submit({"b09", bg::circuits::make_benchmark_scaled("b09", 0.3)});
    service.stop();
    EXPECT_FALSE(service.accepting());
    (void)fut.get();  // submitted-before-stop job still completes
    EXPECT_THROW(
        (void)service.submit(
            {"b09", bg::circuits::make_benchmark_scaled("b09", 0.3)}),
        std::runtime_error);
    EXPECT_EQ(service.stats().jobs_completed, 1u);
}

TEST(FlowService, SubmitWithoutModelThrows) {
    FlowService service(tiny_service(1));
    EXPECT_THROW(
        (void)service.submit(
            {"b09", bg::circuits::make_benchmark_scaled("b09", 0.3)}),
        std::invalid_argument);
}

// ---------------------------------------------------------------------
// Tenancy: weighted-fair admission, quotas, timeouts, cancellation, and
// per-tenant model selection.

/// Submit a long-running job on a 1-worker service so everything queued
/// behind it is admitted while the worker is busy — the deterministic
/// setup for observing queue order.  Returns the blocker's cancel token;
/// cancel it to release the worker.
std::shared_ptr<bg::CancelToken> submit_blocker(
    FlowService& service, std::future<DesignFlowResult>& fut) {
    SubmitOptions opts;
    opts.cancel = std::make_shared<bg::CancelToken>();
    FlowConfig heavy = tiny_flow();
    heavy.num_samples = 5000;  // long enough to outlive the submits below
    opts.flow = heavy;
    fut = service.submit(
        {"blocker", bg::circuits::make_benchmark_scaled("b10", 0.5)}, opts);
    return opts.cancel;
}

TEST(FlowService, WeightedRoundRobinOrdersTenantQueues) {
    const auto model = std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);
    service.register_tenant({"alpha", 2, 0, nullptr});
    service.register_tenant({"beta", 1, 0, nullptr});

    std::future<DesignFlowResult> blocker;
    const auto release = submit_blocker(service, blocker);

    // Queue 3 jobs per tenant while the single worker is busy; record the
    // order the serving thread starts them in via on_complete (1 worker =>
    // execution order == completion order).
    std::mutex order_mu;
    std::vector<std::string> order;
    const auto design = bg::circuits::make_benchmark_scaled("b07", 0.3);
    std::vector<std::future<DesignFlowResult>> futures;
    for (const char* name : {"a1", "a2", "a3"}) {
        SubmitOptions opts;
        opts.tenant = "alpha";
        opts.on_complete = [&order_mu, &order, name](
                               const DesignFlowResult*, std::exception_ptr) {
            const std::lock_guard<std::mutex> lock(order_mu);
            order.emplace_back(name);
        };
        futures.push_back(service.submit({name, design}, opts));
    }
    for (const char* name : {"b1", "b2", "b3"}) {
        SubmitOptions opts;
        opts.tenant = "beta";
        opts.on_complete = [&order_mu, &order, name](
                               const DesignFlowResult*, std::exception_ptr) {
            const std::lock_guard<std::mutex> lock(order_mu);
            order.emplace_back(name);
        };
        futures.push_back(service.submit({name, design}, opts));
    }

    release->request_cancel();
    EXPECT_THROW((void)blocker.get(), bg::CancelledError);
    for (auto& f : futures) {
        (void)f.get();
    }
    // Weight 2 tenant gets two consecutive pops per cursor visit, weight 1
    // gets one: a a b a b b.
    EXPECT_EQ(order, (std::vector<std::string>{"a1", "a2", "b1", "a3", "b2",
                                               "b3"}));

    const auto st = service.stats();
    ASSERT_EQ(st.tenants.size(), 3u);
    EXPECT_EQ(st.tenants[0].name, "");
    EXPECT_EQ(st.tenants[1].name, "alpha");
    EXPECT_EQ(st.tenants[1].jobs_submitted, 3u);
    EXPECT_EQ(st.tenants[1].jobs_ok, 3u);
    EXPECT_EQ(st.tenants[2].name, "beta");
    EXPECT_EQ(st.tenants[2].jobs_ok, 3u);
    EXPECT_EQ(st.tenants[0].jobs_cancelled, 1u);  // the blocker
}

TEST(FlowService, QuotaBreachRejectsWithTypedError) {
    const auto model = std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);
    service.register_tenant({"quota", 1, 2, nullptr});

    std::future<DesignFlowResult> blocker;
    const auto release = submit_blocker(service, blocker);

    const auto design = bg::circuits::make_benchmark_scaled("b07", 0.3);
    SubmitOptions opts;
    opts.tenant = "quota";
    auto f1 = service.submit({"q1", design}, opts);
    auto f2 = service.submit({"q2", design}, opts);
    try {
        (void)service.submit({"q3", design}, opts);
        FAIL() << "third job must breach max_pending=2";
    } catch (const AdmissionError& e) {
        EXPECT_EQ(e.kind(), AdmissionError::Kind::QuotaExceeded);
    }

    release->request_cancel();
    EXPECT_THROW((void)blocker.get(), bg::CancelledError);
    (void)f1.get();
    (void)f2.get();
    const auto st = service.stats();
    EXPECT_EQ(st.jobs_rejected, 1u);
    ASSERT_EQ(st.tenants.size(), 2u);
    EXPECT_EQ(st.tenants[1].jobs_rejected, 1u);
    EXPECT_EQ(st.tenants[1].jobs_ok, 2u);
    EXPECT_EQ(st.tenants[1].jobs_pending, 0u);
}

TEST(FlowService, UnknownTenantRejected) {
    const auto model = std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);
    SubmitOptions opts;
    opts.tenant = "never-registered";
    try {
        (void)service.submit(
            {"x", bg::circuits::make_benchmark_scaled("b07", 0.3)}, opts);
        FAIL() << "unknown tenant must be rejected";
    } catch (const AdmissionError& e) {
        EXPECT_EQ(e.kind(), AdmissionError::Kind::UnknownTenant);
    }
    EXPECT_EQ(service.stats().jobs_rejected, 1u);
}

TEST(FlowService, QueuedJobTimesOutWithTypedReason) {
    const auto model = std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);

    std::future<DesignFlowResult> blocker;
    const auto release = submit_blocker(service, blocker);

    SubmitOptions opts;
    opts.timeout_seconds = 0.02;
    auto doomed = service.submit(
        {"late", bg::circuits::make_benchmark_scaled("b07", 0.3)}, opts);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release->request_cancel();
    EXPECT_THROW((void)blocker.get(), bg::CancelledError);
    try {
        (void)doomed.get();
        FAIL() << "queued past its deadline: must time out";
    } catch (const bg::CancelledError& e) {
        EXPECT_EQ(e.reason(), bg::CancelReason::TimedOut);
    }
    const auto st = service.stats();
    EXPECT_EQ(st.jobs_timed_out, 1u);
    EXPECT_EQ(st.jobs_cancelled, 1u);  // the blocker
}

TEST(FlowService, ExternalCancelAbortsRunningJob) {
    const auto model = std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);

    SubmitOptions opts;
    opts.cancel = std::make_shared<bg::CancelToken>();
    FlowConfig heavy = tiny_flow();
    heavy.num_samples = 5000;
    opts.flow = heavy;
    auto fut = service.submit(
        {"victim", bg::circuits::make_benchmark_scaled("b10", 0.5)}, opts);
    opts.cancel->request_cancel();
    try {
        (void)fut.get();
        // A very fast machine may finish before the poll sees the flag —
        // acceptable; the assertions below only run on the cancel path.
    } catch (const bg::CancelledError& e) {
        EXPECT_EQ(e.reason(), bg::CancelReason::Cancelled);
        EXPECT_EQ(service.stats().jobs_cancelled, 1u);
    }
}

TEST(FlowService, StopNowResolvesEveryFuture) {
    const auto model = std::make_shared<const BoolGebraModel>(tiny_config());
    FlowService service(tiny_service(1), model);

    const auto design = bg::circuits::make_benchmark_scaled("b09", 0.4);
    FlowConfig heavy = tiny_flow();
    heavy.num_samples = 2000;
    std::vector<std::future<DesignFlowResult>> futures;
    for (int i = 0; i < 4; ++i) {
        SubmitOptions opts;
        opts.flow = heavy;
        futures.push_back(
            service.submit({"j" + std::to_string(i), design}, opts));
    }
    service.stop_now();
    EXPECT_FALSE(service.accepting());
    std::size_t resolved = 0;
    for (auto& f : futures) {
        try {
            (void)f.get();
            ++resolved;
        } catch (const bg::CancelledError&) {
            ++resolved;
        }
    }
    EXPECT_EQ(resolved, futures.size()) << "stop_now leaves no future hanging";
    const auto st = service.stats();
    EXPECT_EQ(st.jobs_pending, 0u);
    EXPECT_EQ(st.jobs_completed, futures.size());
}

TEST(FlowService, PerTenantModelSelection) {
    const auto model_a = std::make_shared<const BoolGebraModel>(tiny_config(21));
    const auto model_b =
        std::make_shared<const BoolGebraModel>(tiny_config(9177));
    const auto design = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const FlowResult want_a = run_flow(design, *model_a, tiny_flow());
    const FlowResult want_b = run_flow(design, *model_b, tiny_flow());

    FlowService service(tiny_service(2), model_a);
    service.register_tenant({"custom", 1, 0, model_b});

    auto default_fut = service.submit({"d", design});
    SubmitOptions opts;
    opts.tenant = "custom";
    auto custom_fut = service.submit({"c", design}, opts);
    expect_same_flow(default_fut.get().flow, want_a);
    expect_same_flow(custom_fut.get().flow, want_b);

    // swap_tenant_model(nullptr) reverts the tenant to the service default.
    service.swap_tenant_model("custom", nullptr);
    auto reverted = service.submit({"r", design}, opts);
    expect_same_flow(reverted.get().flow, want_a);
}

TEST(FlowService, WantGraphAndProgressDeliverRoundTrace) {
    const auto model = std::make_shared<const BoolGebraModel>(tiny_config());
    const auto design = bg::circuits::make_benchmark_scaled("b09", 0.4);
    FlowService service(tiny_service(2), model);

    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> progress;
    SubmitOptions opts;
    opts.rounds = 2;
    opts.want_graph = true;
    opts.on_progress = [&](std::size_t round, std::size_t ands) {
        const std::lock_guard<std::mutex> lock(mu);
        progress.emplace_back(round, ands);
    };
    const auto res = service.submit({"b09", design}, opts).get();
    ASSERT_NE(res.final_graph, nullptr);
    EXPECT_EQ(res.final_graph->num_ands(), res.iterated.final_size);
    ASSERT_FALSE(progress.empty());
    EXPECT_EQ(progress.front().first, 1u);
    EXPECT_EQ(progress.back().second, res.iterated.final_size);
    EXPECT_EQ(progress.size(), res.iterated.rounds());
}

// The soundness core of the shared-snapshot design: eval-mode inference
// is genuinely const, so two threads running the flow on ONE model
// instance produce the sequential results bit for bit (and TSan-clean).
TEST(FlowService, SharedModelConcurrentInferenceMatchesSequential) {
    const auto design = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const BoolGebraModel model{tiny_config()};
    const FlowResult want = run_flow(design, model, tiny_flow());

    FlowResult got_a;
    FlowResult got_b;
    std::thread ta([&] { got_a = run_flow(design, model, tiny_flow()); });
    std::thread tb([&] { got_b = run_flow(design, model, tiny_flow()); });
    ta.join();
    tb.join();
    expect_same_flow(got_a, want);
    expect_same_flow(got_b, want);
}

}  // namespace
