#include <gtest/gtest.h>

#include "opt/rewrite_lib.hpp"
#include "util/rng.hpp"

namespace {

using bg::opt::RewriteLibrary;

TEST(RewriteLib, ConstantsAndLiterals) {
    RewriteLibrary lib;
    EXPECT_EQ(lib.structure_for(0x0000).num_gates(), 0u);
    EXPECT_EQ(lib.structure_for(0xFFFF).num_gates(), 0u);
    EXPECT_EQ(lib.structure_for(0xAAAA).num_gates(), 0u);  // x0
    EXPECT_EQ(lib.structure_for(0x5555).num_gates(), 0u);  // !x0
    EXPECT_EQ(lib.structure_for(0xFF00).num_gates(), 0u);  // x3
}

TEST(RewriteLib, SimpleGates) {
    RewriteLibrary lib;
    EXPECT_EQ(lib.structure_for(0x8888).num_gates(), 1u);  // x0 & x1
    EXPECT_EQ(lib.structure_for(0xEEEE).num_gates(), 1u);  // x0 | x1
    EXPECT_EQ(lib.structure_for(0x7777).num_gates(), 1u);  // NAND
    EXPECT_EQ(lib.structure_for(0x6666).num_gates(), 3u);  // XOR
}

TEST(RewriteLib, EveryFunctionEvaluatesCorrectly) {
    // The central property: for every 4-variable function the produced
    // structure computes exactly that function.  (Verified internally too;
    // this test also exercises NPN mapping on the full space.)
    RewriteLibrary lib;
    for (std::uint32_t f = 0; f <= 0xFFFF; ++f) {
        const auto& s = lib.structure_for(static_cast<std::uint16_t>(f));
        ASSERT_EQ(RewriteLibrary::evaluate(s), f) << "function " << f;
    }
    EXPECT_EQ(lib.cache_size(), 0x10000u);
    EXPECT_EQ(lib.classes_built(), 222u)
        << "one synthesis per NPN class, no more";
}

TEST(RewriteLib, StructureSizesAreReasonable) {
    // Spot-check known optimal sizes.
    RewriteLibrary lib;
    // MUX x0 ? x1 : x2 -> 3 AND gates.
    // f = x0 x1 + !x0 x2 : minterm eval: 0xCACA.
    EXPECT_LE(lib.structure_for(0xCACA).num_gates(), 3u);
    // MAJ(x0, x1, x2) = 0xE8E8 -> 4 gates in AIG.
    EXPECT_LE(lib.structure_for(0xE8E8).num_gates(), 4u);
    // 3-input XOR = 0x9696 -> <= 8 gates (optimum is 6..8 region).
    EXPECT_LE(lib.structure_for(0x9696).num_gates(), 8u);
    // 4-input AND.
    EXPECT_EQ(lib.structure_for(0x8000).num_gates(), 3u);
    // 4-input OR = !(AND of complements).
    EXPECT_EQ(lib.structure_for(0xFFFE).num_gates(), 3u);
}

TEST(RewriteLib, WorstCaseStaysBounded) {
    RewriteLibrary lib;
    std::size_t worst = 0;
    bg::Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        const auto f = static_cast<std::uint16_t>(rng.next_below(0x10000));
        worst = std::max(worst, lib.structure_for(f).num_gates());
    }
    // Any 4-var function fits in a handful of gates; a blowup signals a
    // broken decomposition.  (The hardest 4-var functions need ~11 gates
    // optimally; the greedy search may spend a few more.)
    EXPECT_LE(worst, 16u);
}

TEST(RewriteLib, SharedInstanceIsCached) {
    auto& a = RewriteLibrary::instance();
    auto& b = RewriteLibrary::instance();
    EXPECT_EQ(&a, &b);
    (void)a.structure_for(0x1234);
    EXPECT_GE(b.cache_size(), 1u);
}

}  // namespace
