/// \file test_intra_parallel_parity.cpp
/// Whole-flow pin for the intra-design parallel path: run_flow and
/// run_iterated_flow with FlowConfig::intra_workers at 1/2/4 must
/// reproduce the sequential (intra_workers = 0) result field for field on
/// every registry design — no float tolerance.  This is the user-visible
/// acceptance bar for the partition/speculate/ordered-commit refactor:
/// parallelism is a pure latency optimization, invisible in the output.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "core/flow.hpp"
#include "core/flow_engine.hpp"

namespace {

using namespace bg::core;  // NOLINT: test brevity

ModelConfig parity_model_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 29;
    return cfg;
}

FlowConfig parity_flow() {
    FlowConfig fc;
    fc.num_samples = 16;
    fc.top_k = 3;
    fc.seed = 5;
    return fc;
}

void expect_bit_identical(const FlowResult& got, const FlowResult& want) {
    EXPECT_EQ(got.original_size, want.original_size);
    EXPECT_EQ(got.predictions, want.predictions);
    EXPECT_EQ(got.selected, want.selected);
    EXPECT_EQ(got.reductions, want.reductions);
    EXPECT_EQ(got.best_reduction, want.best_reduction);
    EXPECT_EQ(got.bg_best_ratio, want.bg_best_ratio);
    EXPECT_EQ(got.bg_mean_ratio, want.bg_mean_ratio);
    EXPECT_EQ(got.best_decisions, want.best_decisions);
}

TEST(IntraParallelParity, RunFlowIdenticalAcrossIntraWorkerCounts) {
    const BoolGebraModel model{parity_model_config()};
    for (const auto& name : bg::circuits::benchmark_names()) {
        const auto design = bg::circuits::make_benchmark_scaled(name, 0.3);
        const FlowResult reference = run_flow(design, model, parity_flow());

        for (const std::size_t workers : {1UL, 2UL, 4UL}) {
            SCOPED_TRACE(name + " intra_workers=" + std::to_string(workers));
            FlowConfig cfg = parity_flow();
            cfg.intra_workers = workers;
            expect_bit_identical(run_flow(design, model, cfg), reference);
        }
    }
}

TEST(IntraParallelParity, IteratedFlowIdenticalAcrossIntraWorkerCounts) {
    const BoolGebraModel model{parity_model_config()};
    for (const auto& name : bg::circuits::benchmark_names()) {
        const auto design = bg::circuits::make_benchmark_scaled(name, 0.3);
        const IteratedFlowResult reference =
            run_iterated_flow(design, model, parity_flow(), 2);

        for (const std::size_t workers : {1UL, 2UL, 4UL}) {
            SCOPED_TRACE(name + " intra_workers=" + std::to_string(workers));
            FlowConfig cfg = parity_flow();
            cfg.intra_workers = workers;
            const auto got = run_iterated_flow(design, model, cfg, 2);
            EXPECT_EQ(got.original_size, reference.original_size);
            EXPECT_EQ(got.final_size, reference.final_size);
            EXPECT_EQ(got.final_depth, reference.final_depth);
            EXPECT_EQ(got.per_round_reduction,
                      reference.per_round_reduction);
            EXPECT_EQ(got.final_ratio, reference.final_ratio);
        }
    }
}

TEST(IntraParallelParity, DesignFlowIdenticalWithSharedPool) {
    // The FlowEngine path: intra-parallel rounds run nested on the same
    // pool that fans jobs out across designs (nesting-safe for_each) —
    // still pinned to the sequential reference.
    const BoolGebraModel model{parity_model_config()};
    const DesignJob job{"b12",
                        bg::circuits::make_benchmark_scaled("b12", 0.3)};
    const auto reference =
        run_design_flow(job, model, parity_flow(), /*rounds=*/2, nullptr);

    bg::ThreadPool pool(4);
    FlowConfig cfg = parity_flow();
    cfg.intra_workers = 4;
    const auto got = run_design_flow(job, model, cfg, /*rounds=*/2, &pool);
    EXPECT_EQ(got.iterated.final_size, reference.iterated.final_size);
    EXPECT_EQ(got.iterated.per_round_reduction,
              reference.iterated.per_round_reduction);
    EXPECT_EQ(got.iterated.final_ratio, reference.iterated.final_ratio);
    expect_bit_identical(got.flow, reference.flow);
}

}  // namespace
