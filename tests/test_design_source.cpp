#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "aig/cec.hpp"
#include "circuits/design_source.hpp"
#include "circuits/registry.hpp"
#include "core/flow_engine.hpp"
#include "io/aiger.hpp"
#include "verify/portfolio.hpp"

namespace {

namespace fs = std::filesystem;
using bg::circuits::DesignOrigin;
using bg::circuits::DesignSourceError;
using bg::circuits::resolve_design_spec;
using bg::circuits::resolve_design_specs;
using bg::circuits::resolve_single_design;

/// Temp directory fixture: every file-backed test gets a private tree.
class DesignSourceTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("bg_design_source_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const std::string& leaf) const {
        return (dir_ / leaf).string();
    }

    fs::path dir_;
};

// ---------------------------------------------------------------------------
// Registry-backed specs
// ---------------------------------------------------------------------------

TEST_F(DesignSourceTest, RegistryNameResolves) {
    const auto r = resolve_design_spec("b07");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].name, "b07");
    EXPECT_EQ(r[0].origin, DesignOrigin::Registry);
    const auto g = r[0].load();
    EXPECT_EQ(g.num_ands(),
              bg::circuits::make_benchmark("b07").num_ands());
}

TEST_F(DesignSourceTest, ScaleSuffixAndDefaultScale) {
    const auto r = resolve_design_spec("b07@0.5");
    ASSERT_EQ(r.size(), 1u);
    EXPECT_DOUBLE_EQ(r[0].scale, 0.5);
    // An explicit @scale wins over the command-level --scale.
    const auto r2 = resolve_design_spec("b07@0.5", 0.25);
    EXPECT_DOUBLE_EQ(r2[0].scale, 0.5);
    const auto r3 = resolve_design_spec("b07", 0.25);
    EXPECT_DOUBLE_EQ(r3[0].scale, 0.25);
}

TEST_F(DesignSourceTest, RegistryGlobExpandsInRegistryOrder) {
    const auto r = resolve_design_spec("b0?");
    ASSERT_EQ(r.size(), 3u);  // b07 b08 b09
    EXPECT_EQ(r[0].name, "b07");
    EXPECT_EQ(r[1].name, "b08");
    EXPECT_EQ(r[2].name, "b09");
}

TEST_F(DesignSourceTest, AllFlagPrependsWholeRegistry) {
    const auto r = resolve_design_specs({}, /*all=*/true, 1.0);
    EXPECT_EQ(r.size(), bg::circuits::benchmark_names().size());
}

TEST_F(DesignSourceTest, UnknownNameAndEmptyGlobThrow) {
    EXPECT_THROW(resolve_design_spec("nosuchdesign"), DesignSourceError);
    EXPECT_THROW(resolve_design_spec("z*"), DesignSourceError);
    EXPECT_THROW(resolve_design_spec("b07@banana"), DesignSourceError);
    EXPECT_THROW(resolve_design_spec("b07@-1"), DesignSourceError);
}

// ---------------------------------------------------------------------------
// File-backed specs
// ---------------------------------------------------------------------------

TEST_F(DesignSourceTest, FileSpecLoadsAiger) {
    const auto g = bg::circuits::make_benchmark_scaled("b08", 0.3);
    bg::io::write_aiger_binary_file(g, path("d.aig"));
    const auto r = resolve_design_spec("file:" + path("d.aig"));
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].origin, DesignOrigin::File);
    const auto loaded = r[0].load();
    EXPECT_EQ(loaded.num_pis(), g.num_pis());
    EXPECT_EQ(loaded.num_pos(), g.num_pos());
    // write_aiger compacts, so compare fingerprints of compacted forms.
    EXPECT_EQ(bg::aig::structural_fingerprint(loaded),
              bg::aig::structural_fingerprint(g.compact()));
}

TEST_F(DesignSourceTest, BareNetlistPathStillWorks) {
    const auto g = bg::circuits::make_benchmark_scaled("b09", 0.3);
    bg::io::write_aiger_file(g, path("d.aag"));
    const auto r = resolve_design_spec(path("d.aag"));
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].origin, DesignOrigin::File);
    EXPECT_EQ(r[0].load().num_pis(), g.num_pis());
}

TEST_F(DesignSourceTest, FileGlobExpandsSorted) {
    for (const char* name : {"b07", "b08", "b09"}) {
        bg::io::write_aiger_file(
            bg::circuits::make_benchmark_scaled(name, 0.2),
            path(std::string(name) + ".aag"));
    }
    std::ofstream(path("notes.txt")) << "not a netlist\n";
    const auto r = resolve_design_spec("file:" + path("*.aag"));
    ASSERT_EQ(r.size(), 3u);
    EXPECT_TRUE(r[0].name.ends_with("b07.aag"));
    EXPECT_TRUE(r[1].name.ends_with("b08.aag"));
    EXPECT_TRUE(r[2].name.ends_with("b09.aag"));
}

TEST_F(DesignSourceTest, FileErrorsAreDesignSourceErrors) {
    // Missing file.
    EXPECT_THROW(resolve_single_design("file:" + path("missing.aig")).load(),
                 DesignSourceError);
    // Glob over a directory that does not exist.
    EXPECT_THROW(resolve_design_spec("file:" + path("nodir") + "/*.aig"),
                 DesignSourceError);
    // Glob matching nothing.
    EXPECT_THROW(resolve_design_spec("file:" + path("*.aig")),
                 DesignSourceError);
    // Malformed content.
    std::ofstream(path("bad.aag")) << "garbage header\n";
    EXPECT_THROW(resolve_single_design(path("bad.aag")).load(),
                 DesignSourceError);
    // Empty file: body.
    EXPECT_THROW(resolve_design_spec("file:"), DesignSourceError);
}

TEST_F(DesignSourceTest, SingleDesignRejectsMultiMatches) {
    bg::io::write_aiger_file(bg::circuits::make_benchmark_scaled("b07", 0.2),
                             path("a.aag"));
    bg::io::write_aiger_file(bg::circuits::make_benchmark_scaled("b08", 0.2),
                             path("b.aag"));
    EXPECT_THROW(resolve_single_design("file:" + path("*.aag")),
                 DesignSourceError);
}

// ---------------------------------------------------------------------------
// AIGER file -> flow -> verify round trip (the workload path)
// ---------------------------------------------------------------------------

TEST_F(DesignSourceTest, FileBackedFlowRoundTripVerifies) {
    const auto g = bg::circuits::make_benchmark_scaled("b10", 0.5);
    bg::io::write_aiger_binary_file(g, path("b10.aig"));

    auto jobs = bg::core::jobs_from_specs({"file:" + path("b10.aig")},
                                          /*all=*/false, 1.0);
    ASSERT_EQ(jobs.size(), 1u);

    bg::core::ModelConfig mc;
    mc.sage_dims = {12, 12, 8};
    mc.mlp_dims = {16, 8, 1};
    mc.dropout = 0.0F;
    mc.seed = 3;
    const bg::core::BoolGebraModel model{mc};
    bg::core::FlowConfig fc;
    fc.num_samples = 12;
    fc.top_k = 3;
    fc.seed = 9;
    fc.verify = true;  // portfolio-CEC the best candidate inside the flow
    const auto res =
        bg::core::run_design_flow(jobs[0], model, fc, 1, nullptr);
    EXPECT_GT(res.original_size, 0u);
    ASSERT_TRUE(res.verification.has_value());
    EXPECT_NE(res.verification->verdict,
              bg::aig::CecVerdict::NotEquivalent);
}

TEST_F(DesignSourceTest, JobsFromSpecsMixesRegistryAndFiles) {
    bg::io::write_aiger_file(bg::circuits::make_benchmark_scaled("b07", 0.2),
                             path("x.aag"));
    const auto jobs = bg::core::jobs_from_specs(
        {"b08", "file:" + path("x.aag")}, /*all=*/false, 0.2);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].name, "b08");
    EXPECT_TRUE(jobs[1].name.ends_with("x.aag"));
    EXPECT_GT(jobs[0].design.num_ands(), 0u);
    EXPECT_GT(jobs[1].design.num_ands(), 0u);
}

}  // namespace
