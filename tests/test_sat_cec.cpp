#include <gtest/gtest.h>

#include "aig/cec.hpp"
#include "circuits/registry.hpp"
#include "opt/orchestrate.hpp"
#include "opt/standalone.hpp"
#include "sat/cec_sat.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::sat::check_equivalence_sat;

TEST(SatCec, SimplePairs) {
    Aig g;
    {
        const Lit a = g.add_pi();
        const Lit b = g.add_pi();
        g.add_po(lit_not(g.and_(a, b)));
    }
    Aig h;
    {
        const Lit a = h.add_pi();
        const Lit b = h.add_pi();
        h.add_po(h.or_(lit_not(a), lit_not(b)));
    }
    EXPECT_EQ(check_equivalence_sat(g, h), CecVerdict::Equivalent);

    Aig k;
    {
        const Lit a = k.add_pi();
        const Lit b = k.add_pi();
        k.add_po(k.and_(a, b));
    }
    EXPECT_EQ(check_equivalence_sat(g, k), CecVerdict::NotEquivalent);
}

TEST(SatCec, AgreesWithExhaustiveSimulation) {
    // Property: on small-PI circuits SAT and exhaustive simulation must
    // produce identical verdicts, for equivalent and mutated pairs alike.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Aig original = bg::test::redundant_aig(7, 30, 3, seed);
        Aig optimized = original;
        (void)bg::opt::standalone_pass(optimized, bg::opt::OpKind::Rewrite);
        EXPECT_EQ(check_equivalence(original, optimized),
                  CecVerdict::Equivalent);
        EXPECT_EQ(check_equivalence_sat(original, optimized),
                  CecVerdict::Equivalent);

        // Mutate one PO polarity: definitively inequivalent.  Rebuild the
        // optimized graph with the first PO complemented.
        const Aig rebuilt = optimized.compact();
        Aig inv;
        {
            const Aig& src = rebuilt;
            std::vector<Lit> translate(src.num_slots(), 0);
            translate[0] = lit_false;
            for (std::size_t i = 0; i < src.num_pis(); ++i) {
                translate[src.pi(i)] = inv.add_pi();
            }
            for (const Var v : src.topo_ands()) {
                const Lit f0 = src.fanin0(v);
                const Lit f1 = src.fanin1(v);
                translate[v] = inv.and_(
                    lit_not_cond(translate[lit_var(f0)], lit_is_compl(f0)),
                    lit_not_cond(translate[lit_var(f1)], lit_is_compl(f1)));
            }
            for (std::size_t i = 0; i < src.num_pos(); ++i) {
                Lit po = lit_not_cond(translate[lit_var(src.po(i))],
                                      lit_is_compl(src.po(i)));
                if (i == 0) {
                    po = lit_not(po);
                }
                inv.add_po(po);
            }
        }
        EXPECT_EQ(check_equivalence_sat(rebuilt, inv),
                  CecVerdict::NotEquivalent)
            << "seed " << seed;
    }
}

TEST(SatCec, ProvesWidePiDesignsExhaustiveCannotTouch) {
    // The whole point of the SAT back end: registry designs have dozens
    // of PIs, beyond exhaustive simulation; SAT still PROVES equivalence
    // after a full optimization script.
    const Aig original = bg::circuits::make_benchmark_scaled("b07", 0.5);
    ASSERT_GT(original.num_pis(), 14u);
    Aig g = original;
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Rewrite);
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Resub);
    (void)bg::opt::standalone_pass(g, bg::opt::OpKind::Refactor);
    // Simulation can only say "probably".
    EXPECT_EQ(check_equivalence(original, g),
              CecVerdict::ProbablyEquivalent);
    // SAT proves it.
    EXPECT_EQ(check_equivalence_sat(original, g), CecVerdict::Equivalent);
}

TEST(SatCec, OrchestrationProvenOnWideDesign) {
    const Aig original = bg::circuits::make_benchmark_scaled("b09", 0.6);
    bg::Rng rng(33);
    Aig g = original;
    bg::opt::DecisionVector d(g.num_slots(), bg::opt::OpKind::None);
    for (Var v = 0; v < g.num_slots(); ++v) {
        if (g.is_and(v)) {
            d[v] = bg::opt::op_from_index(static_cast<int>(rng.next_below(3)));
        }
    }
    (void)bg::opt::orchestrate(g, d);
    EXPECT_EQ(check_equivalence_sat(original, g), CecVerdict::Equivalent);
}

TEST(SatCec, CounterexampleIsValidated) {
    // Single differing minterm among 2^20 — random simulation will
    // essentially never hit it, SAT finds it instantly.
    const unsigned n = 20;
    Aig g;
    const auto gp = g.add_pis(n);
    g.add_po(g.and_reduce(gp));
    Aig h;
    const auto hp = h.add_pis(n);
    h.add_po(lit_false);  // differs only at the all-ones minterm
    EXPECT_EQ(check_equivalence(g, h), CecVerdict::ProbablyEquivalent)
        << "random simulation should miss the needle";
    EXPECT_EQ(check_equivalence_sat(g, h), CecVerdict::NotEquivalent)
        << "SAT must find the needle";
}

TEST(SatCec, BudgetExhaustionDegradesGracefully) {
    const Aig a = bg::circuits::make_benchmark_scaled("b11", 0.4);
    Aig b = a;
    (void)bg::opt::standalone_pass(b, bg::opt::OpKind::Rewrite);
    bg::sat::SatCecOptions opts;
    opts.conflict_budget = 1;  // absurdly small
    const auto verdict = check_equivalence_sat(a, b, opts);
    EXPECT_NE(verdict, CecVerdict::NotEquivalent);
}

TEST(SatCec, MemoryBudgetDegradesHardMiter) {
    // A miter whose CNF alone exceeds a tiny per-engine budget must
    // degrade to ProbablyEquivalent with the memory flag set — never
    // claim NotEquivalent, never grow unbounded, never throw.
    const Aig a = bg::circuits::make_benchmark_scaled("b11", 0.4);
    Aig b = a;
    (void)bg::opt::standalone_pass(b, bg::opt::OpKind::Rewrite);
    bg::sat::SatCecOptions opts;
    opts.max_memory_bytes = 1024;
    const auto res = bg::sat::check_equivalence_sat_full(a, b, opts);
    EXPECT_EQ(res.verdict, CecVerdict::ProbablyEquivalent);
    EXPECT_TRUE(res.stats.memory_limited);
    EXPECT_GT(res.stats.memory_bytes, opts.max_memory_bytes);
}

TEST(SatCec, DefaultMemoryBudgetUnobtrusive) {
    // The 512 MiB default must not change verdicts on this library's
    // miter sizes; the stats still expose the measured footprint.
    const Aig a = bg::circuits::make_benchmark_scaled("b11", 0.4);
    Aig b = a;
    (void)bg::opt::standalone_pass(b, bg::opt::OpKind::Rewrite);
    const auto res = bg::sat::check_equivalence_sat_full(a, b);
    EXPECT_EQ(res.verdict, CecVerdict::Equivalent);
    EXPECT_FALSE(res.stats.memory_limited);
    EXPECT_GT(res.stats.memory_bytes, 0u);
}

TEST(SatCec, InterfaceMismatchThrows) {
    Aig a;
    a.add_pi();
    Aig b;
    b.add_pis(2);
    EXPECT_THROW((void)check_equivalence_sat(a, b), bg::ContractViolation);
}

}  // namespace
