#include <gtest/gtest.h>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::sat;  // NOLINT: test brevity

TEST(Sat, EmptyInstanceIsSat) {
    Solver s;
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, SingleUnit) {
    Solver s;
    const Var x = s.new_var();
    EXPECT_TRUE(s.add_clause({mk_lit(x)}));
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.model_value(x));
}

TEST(Sat, ContradictoryUnits) {
    Solver s;
    const Var x = s.new_var();
    EXPECT_TRUE(s.add_clause({mk_lit(x)}));
    EXPECT_FALSE(s.add_clause({mk_lit(x, true)}));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
    Solver s;
    (void)s.new_var();
    EXPECT_FALSE(s.add_clause({}));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, TautologyIgnored) {
    Solver s;
    const Var x = s.new_var();
    EXPECT_TRUE(s.add_clause({mk_lit(x), mk_lit(x, true)}));
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, PropagationChain) {
    // x0 & (x0 -> x1) & (x1 -> x2) ... forces everything true.
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 20; ++i) {
        vars.push_back(s.new_var());
    }
    EXPECT_TRUE(s.add_clause({mk_lit(vars[0])}));
    for (int i = 0; i + 1 < 20; ++i) {
        EXPECT_TRUE(s.add_clause({mk_lit(vars[static_cast<std::size_t>(i)], true),
                                  mk_lit(vars[static_cast<std::size_t>(i) + 1])}));
    }
    EXPECT_EQ(s.solve(), Result::Sat);
    for (const Var v : vars) {
        EXPECT_TRUE(s.model_value(v));
    }
}

TEST(Sat, XorChainParity) {
    // Encode x0 ^ x1 ^ x2 = 1 with CNF; exactly the odd assignments work.
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    const Var c = s.new_var();
    const auto A = mk_lit(a);
    const auto B = mk_lit(b);
    const auto C = mk_lit(c);
    // odd parity clauses
    EXPECT_TRUE(s.add_clause({A, B, C}));
    EXPECT_TRUE(s.add_clause({A, lit_neg(B), lit_neg(C)}));
    EXPECT_TRUE(s.add_clause({lit_neg(A), B, lit_neg(C)}));
    EXPECT_TRUE(s.add_clause({lit_neg(A), lit_neg(B), C}));
    ASSERT_EQ(s.solve(), Result::Sat);
    const int ones = (s.model_value(a) ? 1 : 0) + (s.model_value(b) ? 1 : 0) +
                     (s.model_value(c) ? 1 : 0);
    EXPECT_EQ(ones % 2, 1);
}

TEST(Sat, PigeonholeUnsat) {
    // PHP(n+1, n): n+1 pigeons in n holes — classically UNSAT and a real
    // workout for clause learning.
    for (const int n : {3, 4, 5}) {
        Solver s;
        std::vector<std::vector<Var>> p(static_cast<std::size_t>(n + 1));
        for (int i = 0; i <= n; ++i) {
            for (int j = 0; j < n; ++j) {
                p[static_cast<std::size_t>(i)].push_back(s.new_var());
            }
        }
        // Every pigeon sits somewhere.
        for (int i = 0; i <= n; ++i) {
            std::vector<Lit> clause;
            for (int j = 0; j < n; ++j) {
                clause.push_back(mk_lit(p[static_cast<std::size_t>(i)]
                                         [static_cast<std::size_t>(j)]));
            }
            EXPECT_TRUE(s.add_clause(clause));
        }
        // No two pigeons share a hole.
        for (int j = 0; j < n; ++j) {
            for (int i1 = 0; i1 <= n; ++i1) {
                for (int i2 = i1 + 1; i2 <= n; ++i2) {
                    (void)s.add_clause(
                        {mk_lit(p[static_cast<std::size_t>(i1)]
                                 [static_cast<std::size_t>(j)], true),
                         mk_lit(p[static_cast<std::size_t>(i2)]
                                 [static_cast<std::size_t>(j)], true)});
                }
            }
        }
        EXPECT_EQ(s.solve(), Result::Unsat) << "PHP n=" << n;
    }
}

TEST(Sat, AssumptionsRestrictModels) {
    Solver s;
    const Var x = s.new_var();
    const Var y = s.new_var();
    EXPECT_TRUE(s.add_clause({mk_lit(x), mk_lit(y)}));
    ASSERT_EQ(s.solve({mk_lit(x, true)}), Result::Sat);
    EXPECT_FALSE(s.model_value(x));
    EXPECT_TRUE(s.model_value(y));
    // Contradictory assumptions.
    EXPECT_EQ(s.solve({mk_lit(x, true), mk_lit(y, true)}), Result::Unsat);
    // Solver is reusable afterwards.
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
    // A hard pigeonhole with a tiny budget must give Unknown, not hang.
    const int n = 7;
    Solver s;
    std::vector<std::vector<Var>> p(static_cast<std::size_t>(n + 1));
    for (int i = 0; i <= n; ++i) {
        for (int j = 0; j < n; ++j) {
            p[static_cast<std::size_t>(i)].push_back(s.new_var());
        }
    }
    for (int i = 0; i <= n; ++i) {
        std::vector<Lit> clause;
        for (int j = 0; j < n; ++j) {
            clause.push_back(mk_lit(
                p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]));
        }
        (void)s.add_clause(clause);
    }
    for (int j = 0; j < n; ++j) {
        for (int i1 = 0; i1 <= n; ++i1) {
            for (int i2 = i1 + 1; i2 <= n; ++i2) {
                (void)s.add_clause(
                    {mk_lit(p[static_cast<std::size_t>(i1)]
                             [static_cast<std::size_t>(j)], true),
                     mk_lit(p[static_cast<std::size_t>(i2)]
                             [static_cast<std::size_t>(j)], true)});
            }
        }
    }
    EXPECT_EQ(s.solve({}, 50), Result::Unknown);
}

/// Reference brute-force evaluation of a CNF over <= 16 vars.
bool brute_force_sat(int num_vars,
                     const std::vector<std::vector<Lit>>& clauses) {
    for (std::uint32_t m = 0; m < (1U << num_vars); ++m) {
        bool all = true;
        for (const auto& c : clauses) {
            bool sat = false;
            for (const Lit l : c) {
                const bool val = (m >> lit_var(l)) & 1U;
                if (val != lit_sign(l)) {
                    sat = true;
                    break;
                }
            }
            if (!sat) {
                all = false;
                break;
            }
        }
        if (all) {
            return true;
        }
    }
    return false;
}

class RandomCnf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCnf, AgreesWithBruteForce) {
    bg::Rng rng(GetParam());
    const int num_vars = 6 + static_cast<int>(rng.next_below(6));
    const std::size_t num_clauses =
        static_cast<std::size_t>(num_vars) * (3 + rng.next_below(3));
    std::vector<std::vector<Lit>> clauses;
    Solver s;
    for (int v = 0; v < num_vars; ++v) {
        (void)s.new_var();
    }
    bool early_unsat = false;
    for (std::size_t c = 0; c < num_clauses; ++c) {
        const std::size_t width = 1 + rng.next_below(3);
        std::vector<Lit> clause;
        for (std::size_t k = 0; k < width; ++k) {
            clause.push_back(
                mk_lit(static_cast<Var>(rng.next_below(
                           static_cast<std::uint64_t>(num_vars))),
                       rng.next_bool()));
        }
        clauses.push_back(clause);
        if (!s.add_clause(clause)) {
            early_unsat = true;
        }
    }
    const bool expected = brute_force_sat(num_vars, clauses);
    if (early_unsat) {
        EXPECT_FALSE(expected);
        return;
    }
    const auto got = s.solve();
    EXPECT_EQ(got == Result::Sat, expected) << "vars=" << num_vars;
    if (got == Result::Sat) {
        // The model must satisfy every clause.
        for (const auto& c : clauses) {
            bool sat = false;
            for (const Lit l : c) {
                if (s.model_value(lit_var(l)) != lit_sign(l)) {
                    sat = true;
                    break;
                }
            }
            EXPECT_TRUE(sat) << "model violates a clause";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf,
                         ::testing::Range(std::uint64_t{0},
                                          std::uint64_t{40}));

TEST(Sat, MemoryEstimateGrowsWithInstance) {
    Solver s;
    EXPECT_EQ(s.memory_estimate(), 0u);
    const Var x = s.new_var();
    const Var y = s.new_var();
    const std::size_t after_vars = s.memory_estimate();
    EXPECT_GT(after_vars, 0u);
    EXPECT_TRUE(s.add_clause({mk_lit(x), mk_lit(y)}));
    EXPECT_GT(s.memory_estimate(), after_vars);
    EXPECT_FALSE(s.memory_limit_hit());
    EXPECT_EQ(s.memory_limit(), 0u) << "unlimited by default";
}

TEST(Sat, MemoryLimitDegradesToUnknown) {
    // A hard pigeonhole under a budget smaller than its own CNF: solve()
    // must return Unknown with the memory flag set instead of growing the
    // learned-clause database without bound.
    const int n = 7;
    Solver s;
    std::vector<std::vector<Var>> p(static_cast<std::size_t>(n + 1));
    for (int i = 0; i <= n; ++i) {
        for (int j = 0; j < n; ++j) {
            p[static_cast<std::size_t>(i)].push_back(s.new_var());
        }
    }
    for (int i = 0; i <= n; ++i) {
        std::vector<Lit> clause;
        for (int j = 0; j < n; ++j) {
            clause.push_back(mk_lit(
                p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]));
        }
        (void)s.add_clause(clause);
    }
    for (int j = 0; j < n; ++j) {
        for (int i1 = 0; i1 <= n; ++i1) {
            for (int i2 = i1 + 1; i2 <= n; ++i2) {
                (void)s.add_clause(
                    {mk_lit(p[static_cast<std::size_t>(i1)]
                             [static_cast<std::size_t>(j)], true),
                     mk_lit(p[static_cast<std::size_t>(i2)]
                             [static_cast<std::size_t>(j)], true)});
            }
        }
    }
    s.set_memory_limit(1);  // below even the base CNF
    EXPECT_EQ(s.solve(), Result::Unknown);
    EXPECT_TRUE(s.memory_limit_hit());
    EXPECT_GT(s.memory_estimate(), s.memory_limit());
    // Raising the limit makes the same instance solvable again.
    s.set_memory_limit(0);
    EXPECT_EQ(s.solve(), Result::Unsat);
}

}  // namespace
