#include <gtest/gtest.h>

#include <filesystem>

#include "aig/aig.hpp"
#include "circuits/design_source.hpp"
#include "core/features.hpp"
#include "io/aiger.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using namespace bg::aig;  // NOLINT: test brevity

/// Deterministic dense random AIG with `ands` AND nodes — the million-node
/// construction used by bench_aig_scale, kept small-PI so the graph is
/// deep and fanout-heavy like real netlists.
Aig build_large(std::size_t pis, std::size_t ands, std::uint64_t seed) {
    Aig g;
    g.reserve(1 + pis + ands);
    bg::Rng rng(seed);
    std::vector<Lit> pool = g.add_pis(pis);
    pool.reserve(pis + ands);
    while (g.num_ands() < ands) {
        const Lit x = pool[rng.next_u64() % pool.size()];
        const Lit y = pool[rng.next_u64() % pool.size()];
        const Lit z = g.and_(lit_not_cond(x, rng.next_u64() % 2 != 0),
                             lit_not_cond(y, rng.next_u64() % 2 != 0));
        if (!g.is_and(lit_var(z))) {
            continue;  // trivial simplification, no new node
        }
        pool.push_back(z);
    }
    // Cap the PO count: reference the most recent nodes.
    for (std::size_t i = 0; i < 32 && i < pool.size(); ++i) {
        g.add_po(pool[pool.size() - 1 - i]);
    }
    return g;
}

TEST(AigScale, MillionNodeGraphStaysWithinPackedBudget) {
    constexpr std::size_t k_ands = 1'000'000;
    const Aig g = build_large(64, k_ands, 42);
    ASSERT_GE(g.num_ands(), k_ands);

    // The acceptance bar: core node storage at most 16 bytes per node.
    EXPECT_LE(Aig::node_bytes(), 16u);
    const auto m = g.memory_stats();
    EXPECT_GE(m.node_array_bytes, g.num_slots() * Aig::node_bytes());
    EXPECT_GT(m.total(), m.node_array_bytes);

    // Traversal machinery holds up at this size.
    const auto order = g.topo_ands();
    EXPECT_EQ(order.size(), g.num_ands());
    EXPECT_GT(g.depth(), 0u);
    g.check_integrity();
}

TEST(AigScale, MillionNodeAigerRoundTripThroughDesignSource) {
    constexpr std::size_t k_ands = 1'000'000;
    const Aig g = build_large(64, k_ands, 7);

    const auto dir = fs::temp_directory_path() / "bg_aig_scale_test";
    fs::create_directories(dir);
    const std::string path = (dir / "million.aig").string();
    bg::io::write_aiger_binary_file(g, path);

    const auto loaded = bg::circuits::load_design_spec("file:" + path);
    EXPECT_EQ(loaded.num_ands(), g.compact().num_ands());
    EXPECT_EQ(loaded.num_pis(), g.num_pis());
    EXPECT_EQ(loaded.num_pos(), g.num_pos());

    // Feature-extraction CSR build — the GNN ingestion path — must scale.
    const auto csr = bg::core::build_csr(loaded);
    EXPECT_EQ(csr.offsets.size(), loaded.num_slots() + 1);
    EXPECT_GT(csr.neighbors.size(), 2 * loaded.num_ands());

    std::error_code ec;
    fs::remove_all(dir, ec);
}

}  // namespace
