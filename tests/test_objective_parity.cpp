#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <numeric>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/flow.hpp"
#include "core/flow_engine.hpp"
#include "core/trainer.hpp"
#include "opt/objective.hpp"
#include "test_helpers.hpp"

/// \file test_objective_parity.cpp
/// The redesign's hard guarantee: with the default SizeObjective the flow
/// selects the same candidates, reports the same ratios and commits the
/// same graphs as the pre-objective code, bit for bit, at any worker
/// count.  The reference selection below re-implements the pre-redesign
/// step 3 (evaluate the top-k, keep the first max-reduction candidate,
/// average the size ratios) so any divergence in the generic
/// comparator-based path fails here.

namespace {

using namespace bg::core;  // NOLINT: test brevity
using bg::aig::Aig;
using bg::opt::OpKind;

ModelConfig tiny_config() {
    ModelConfig cfg;
    cfg.sage_dims = {12, 12, 8};
    cfg.mlp_dims = {16, 8, 1};
    cfg.dropout = 0.0F;
    cfg.seed = 21;
    return cfg;
}

FlowConfig flow_config() {
    FlowConfig fc;
    fc.num_samples = 30;
    fc.top_k = 6;
    fc.seed = 77;
    return fc;
}

void expect_flow_equal(const FlowResult& a, const FlowResult& b) {
    EXPECT_EQ(a.original_size, b.original_size);
    EXPECT_EQ(a.samples_evaluated, b.samples_evaluated);
    EXPECT_EQ(a.predictions, b.predictions);
    EXPECT_EQ(a.selected, b.selected);
    EXPECT_EQ(a.reductions, b.reductions);
    EXPECT_EQ(a.best_reduction, b.best_reduction);
    EXPECT_EQ(a.mean_reduction, b.mean_reduction);
    EXPECT_EQ(a.bg_best_ratio, b.bg_best_ratio);
    EXPECT_EQ(a.bg_mean_ratio, b.bg_mean_ratio);
    EXPECT_EQ(a.best_decisions, b.best_decisions);
}

TEST(SizeParity, NullAndExplicitSizeObjectiveAreIdentical) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const BoolGebraModel model(tiny_config());
    FlowConfig defaulted = flow_config();
    FlowConfig explicit_size = flow_config();
    explicit_size.objective = bg::opt::make_objective("size");
    const auto ra = run_flow(g, model, defaulted);
    const auto rb = run_flow(g, model, explicit_size);
    expect_flow_equal(ra, rb);
    EXPECT_EQ(ra.objective, "size");
    EXPECT_EQ(rb.objective, "size");
}

TEST(SizeParity, FlowMatchesPreRedesignReferenceSelection) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const BoolGebraModel model(tiny_config());
    const FlowConfig fc = flow_config();
    const auto res = run_flow(g, model, fc);

    // Reference: regenerate the same sample batch, rank by the reported
    // predictions and redo the pre-redesign evaluation/selection.
    const auto st = compute_static_features(g, fc.opt);
    const auto decisions =
        generate_decisions(g, fc.num_samples, fc.guided, fc.seed, st);
    ASSERT_EQ(res.predictions.size(), decisions.size());
    std::vector<std::size_t> order(decisions.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return res.predictions[a] < res.predictions[b];
                     });
    const std::size_t k = std::min(fc.top_k, order.size());
    const std::vector<std::size_t> selected(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
    EXPECT_EQ(res.selected, selected);

    int best_reduction = 0;
    bg::opt::DecisionVector best_decisions;
    std::vector<int> reductions;
    double sum_ratio = 0.0;
    double sum_reduction = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        const auto rec =
            evaluate_decisions(g, decisions[selected[i]], fc.opt);
        reductions.push_back(rec.reduction);
        if (rec.reduction > best_reduction || best_decisions.empty()) {
            best_reduction = std::max(best_reduction, rec.reduction);
            best_decisions = decisions[selected[i]];
        }
        sum_reduction += rec.reduction;
        sum_ratio += static_cast<double>(rec.final_size) /
                     static_cast<double>(g.num_ands());
    }
    EXPECT_EQ(res.reductions, reductions);
    EXPECT_EQ(res.best_reduction, best_reduction);
    EXPECT_EQ(res.best_decisions, best_decisions);
    EXPECT_EQ(res.mean_reduction,
              sum_reduction / static_cast<double>(k));
    EXPECT_EQ(res.bg_mean_ratio, sum_ratio / static_cast<double>(k));
    EXPECT_EQ(res.bg_best_ratio,
              static_cast<double>(static_cast<int>(g.num_ands()) -
                                  best_reduction) /
                  static_cast<double>(g.num_ands()));
}

TEST(SizeParity, IteratedFlowCommitsIdenticalGraphs) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    const BoolGebraModel model(tiny_config());
    FlowConfig defaulted = flow_config();
    FlowConfig explicit_size = flow_config();
    explicit_size.objective = bg::opt::make_objective("size");

    const auto ra = run_iterated_flow(g, model, defaulted, 3);
    const auto rb = run_iterated_flow(g, model, explicit_size, 3);
    EXPECT_EQ(ra.original_size, rb.original_size);
    EXPECT_EQ(ra.final_size, rb.final_size);
    EXPECT_EQ(ra.per_round_reduction, rb.per_round_reduction);
    EXPECT_EQ(ra.final_ratio, rb.final_ratio);
    EXPECT_EQ(ra.final_depth, rb.final_depth);

    // Reference: the committed graph equals a manual commit loop using
    // the pre-redesign stopping rule (best_reduction <= 0).
    Aig current = g;
    FlowConfig round_cfg = flow_config();
    std::vector<int> rounds_ref;
    for (std::size_t round = 0; round < 3; ++round) {
        round_cfg.seed = flow_config().seed + round;
        const auto flow = run_flow(current, model, round_cfg);
        if (flow.best_reduction <= 0 || flow.best_decisions.empty()) {
            break;
        }
        auto d = flow.best_decisions;
        (void)bg::opt::orchestrate(current, d, round_cfg.opt);
        current = current.compact();
        rounds_ref.push_back(flow.best_reduction);
    }
    EXPECT_EQ(ra.per_round_reduction, rounds_ref);
    EXPECT_EQ(ra.final_size, current.num_ands());
    EXPECT_EQ(current.depth(), ra.final_depth);
}

TEST(SizeParity, EngineBatchIdenticalAcrossWorkersAndObjectiveSpelling) {
    const BoolGebraModel model(tiny_config());
    const auto jobs = jobs_from_registry(
        std::vector<std::string>{"b07", "b10"}, 0.3);

    BatchFlowResult reference;
    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        for (const bool explicit_size : {false, true}) {
            EngineConfig cfg;
            cfg.workers = workers;
            cfg.rounds = 2;
            cfg.flow = flow_config();
            if (explicit_size) {
                cfg.flow.objective = bg::opt::make_objective("size");
            }
            FlowEngine engine(cfg);
            const auto batch = engine.run(jobs, model);
            ASSERT_EQ(batch.designs.size(), jobs.size());
            EXPECT_EQ(batch.objective, "size");
            if (reference.designs.empty()) {
                reference = batch;
                continue;
            }
            EXPECT_EQ(batch.avg_bg_best_ratio, reference.avg_bg_best_ratio);
            EXPECT_EQ(batch.avg_bg_mean_ratio, reference.avg_bg_mean_ratio);
            EXPECT_EQ(batch.avg_final_ratio, reference.avg_final_ratio);
            for (std::size_t j = 0; j < jobs.size(); ++j) {
                expect_flow_equal(batch.designs[j].flow,
                                  reference.designs[j].flow);
                EXPECT_EQ(batch.designs[j].iterated.final_size,
                          reference.designs[j].iterated.final_size);
                EXPECT_EQ(batch.designs[j].iterated.per_round_reduction,
                          reference.designs[j].iterated.per_round_reduction);
            }
        }
    }
}

TEST(SizeParity, V1CheckpointFlowsBitIdenticalAtAnyWorkerCount) {
    // The multi-head redesign's guarantee: a legacy v1 single-head
    // checkpoint still ranks with the raw size column, so size-objective
    // flows reproduce the in-memory model's results — the PR-4 behavior —
    // bit for bit, sequentially and through the engine at any worker
    // count.
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.4);
    BoolGebraModel trained(tiny_config());
    {
        const auto records = generate_guided_samples(g, 24, 13);
        const Dataset ds = build_dataset(g, records);
        TrainConfig tc = TrainConfig::quick();
        tc.epochs = 8;
        (void)train_model(trained, ds, tc);  // also fits the input stats
    }
    const auto path = std::filesystem::temp_directory_path() /
                      "bg_parity_v1_checkpoint.bin";
    trained.save(path);
    const BoolGebraModel loaded = load_checkpoint(path, tiny_config());
    EXPECT_EQ(loaded.num_heads(), 1u);

    const FlowConfig fc = flow_config();
    const auto direct = run_flow(g, trained, fc);
    const auto via_file = run_flow(g, loaded, fc);
    expect_flow_equal(direct, via_file);
    EXPECT_EQ(direct.ranked_by, "size");
    EXPECT_EQ(via_file.ranked_by, "size");

    const auto jobs = jobs_from_registry(
        std::vector<std::string>{"b07", "b10"}, 0.3);
    BatchFlowResult reference;
    for (const std::size_t workers : {1UL, 2UL, 4UL}) {
        EngineConfig cfg;
        cfg.workers = workers;
        cfg.rounds = 2;
        cfg.flow = flow_config();
        FlowEngine engine(cfg);
        const auto batch = engine.run(jobs, loaded);
        EXPECT_EQ(batch.ranked_by, "size");
        if (reference.designs.empty()) {
            // Worker-count-1 run with the *in-memory* model is the pin.
            EngineConfig ref_cfg = cfg;
            ref_cfg.workers = 1;
            FlowEngine ref_engine(ref_cfg);
            reference = ref_engine.run(jobs, trained);
        }
        ASSERT_EQ(batch.designs.size(), reference.designs.size());
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            expect_flow_equal(batch.designs[j].flow,
                              reference.designs[j].flow);
            EXPECT_EQ(batch.designs[j].iterated.final_size,
                      reference.designs[j].iterated.final_size);
        }
    }
    std::filesystem::remove(path);
}

TEST(SizeParity, OrchestrateDefaultEqualsExplicitSizeObjective) {
    for (const std::uint64_t seed : {5ULL, 9ULL}) {
        Aig g1 = bg::test::redundant_aig(8, 40, 4, seed);
        Aig g2 = g1;
        const auto d = bg::opt::uniform_decisions(g1, OpKind::Rewrite);
        const auto r1 = bg::opt::orchestrate(g1, d);
        const auto r2 =
            bg::opt::orchestrate(g2, d, {}, bg::opt::SizeObjective{});
        EXPECT_EQ(r1.final_size, r2.final_size);
        EXPECT_EQ(r1.applied, r2.applied);
        EXPECT_EQ(r1.num_applied, r2.num_applied);
        EXPECT_EQ(r2.num_rejected, 0u)
            << "size objective must accept every applicable candidate";
        EXPECT_EQ(g1.to_string(), g2.to_string());
    }
}

}  // namespace
