#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "nn/sage.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace bg::nn;  // NOLINT: test brevity

Matrix random_matrix(std::size_t r, std::size_t c, bg::Rng& rng,
                     float scale = 1.0F) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.next_gaussian()) * scale;
    }
    return m;
}

/// Central finite difference of a scalar function w.r.t. one float.
double numeric_grad(float* x, const std::function<double()>& f,
                    double h = 1e-3) {
    const float saved = *x;
    *x = static_cast<float>(saved + h);
    const double up = f();
    *x = static_cast<float>(saved - h);
    const double down = f();
    *x = saved;
    return (up - down) / (2.0 * h);
}

TEST(Matrix, MatmulAgainstReference) {
    bg::Rng rng(1);
    const Matrix a = random_matrix(3, 4, rng);
    const Matrix b = random_matrix(4, 5, rng);
    Matrix c;
    matmul(a, b, c);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            float ref = 0;
            for (std::size_t k = 0; k < 4; ++k) {
                ref += a.at(i, k) * b.at(k, j);
            }
            EXPECT_NEAR(c.at(i, j), ref, 1e-4);
        }
    }
}

TEST(Matrix, TransposedVariants) {
    bg::Rng rng(2);
    const Matrix a = random_matrix(4, 3, rng);
    const Matrix b = random_matrix(4, 5, rng);
    Matrix c;
    matmul_tn(a, b, c);  // (3x4)*(4x5)
    EXPECT_EQ(c.rows(), 3u);
    EXPECT_EQ(c.cols(), 5u);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            float ref = 0;
            for (std::size_t k = 0; k < 4; ++k) {
                ref += a.at(k, i) * b.at(k, j);
            }
            EXPECT_NEAR(c.at(i, j), ref, 1e-4);
        }
    }
    const Matrix d = random_matrix(6, 3, rng);
    const Matrix e = random_matrix(5, 3, rng);
    Matrix f;
    matmul_nt(d, e, f);  // (6x3)*(3x5)
    EXPECT_EQ(f.rows(), 6u);
    EXPECT_EQ(f.cols(), 5u);
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            float ref = 0;
            for (std::size_t k = 0; k < 3; ++k) {
                ref += d.at(i, k) * e.at(j, k);
            }
            EXPECT_NEAR(f.at(i, j), ref, 1e-4);
        }
    }
}

TEST(Matrix, XavierBounds) {
    bg::Rng rng(3);
    const Matrix m = Matrix::xavier(100, 50, rng);
    const float bound = std::sqrt(6.0F / 150.0F);
    for (const float v : m.data()) {
        EXPECT_LE(std::abs(v), bound + 1e-6F);
    }
}

TEST(Linear, GradientCheck) {
    bg::Rng rng(4);
    Linear lin(5, 3, rng);
    const Matrix x = random_matrix(4, 5, rng);
    const std::vector<float> target{0.3F, -0.1F, 0.7F, 0.2F};

    // Scalar objective: sum of squares of outputs (simple and smooth).
    const auto objective = [&]() {
        Linear copy = lin;  // forward only; cache irrelevant
        const Matrix y = copy.forward(x);
        double s = 0;
        for (const float v : y.data()) {
            s += 0.5 * v * v;
        }
        return s;
    };

    lin.zero_grad();
    const Matrix y = lin.forward(x);
    Matrix dy = y;  // dL/dy = y for L = 0.5*sum(y^2)
    const Matrix dx = lin.backward(dy);

    // Check a few weight gradients.
    auto params = lin.params();
    for (const std::size_t i : {0UL, 3UL, 7UL, 14UL}) {
        const double num = numeric_grad(&params[0].value[i], objective);
        EXPECT_NEAR(params[0].grad[i], num, 5e-2)
            << "weight gradient " << i;
    }
    for (const std::size_t i : {0UL, 2UL}) {
        const double num = numeric_grad(&params[1].value[i], objective);
        EXPECT_NEAR(params[1].grad[i], num, 5e-2) << "bias gradient " << i;
    }
    // Input gradient via perturbing x requires re-running forward; check
    // shape only here (input grads are covered by the SAGE test below).
    EXPECT_EQ(dx.rows(), x.rows());
    EXPECT_EQ(dx.cols(), x.cols());
}

TEST(ReLU6, ForwardBackward) {
    Matrix x(1, 5);
    x.at(0, 0) = -1.0F;
    x.at(0, 1) = 0.5F;
    x.at(0, 2) = 5.9F;
    x.at(0, 3) = 7.0F;
    x.at(0, 4) = 0.0F;
    ReLU6 act;
    const Matrix y = act.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0F);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0.5F);
    EXPECT_FLOAT_EQ(y.at(0, 2), 5.9F);
    EXPECT_FLOAT_EQ(y.at(0, 3), 6.0F);
    Matrix dy(1, 5);
    dy.fill(1.0F);
    const Matrix dx = act.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0F);  // clipped below
    EXPECT_FLOAT_EQ(dx.at(0, 1), 1.0F);
    EXPECT_FLOAT_EQ(dx.at(0, 2), 1.0F);
    EXPECT_FLOAT_EQ(dx.at(0, 3), 0.0F);  // clipped above
}

TEST(Sigmoid, ForwardBackward) {
    Matrix x(1, 3);
    x.at(0, 0) = 0.0F;
    x.at(0, 1) = 100.0F;
    x.at(0, 2) = -100.0F;
    Sigmoid s;
    const Matrix y = s.forward(x);
    EXPECT_NEAR(y.at(0, 0), 0.5, 1e-6);
    EXPECT_NEAR(y.at(0, 1), 1.0, 1e-6);
    EXPECT_NEAR(y.at(0, 2), 0.0, 1e-6);
    Matrix dy(1, 3);
    dy.fill(1.0F);
    const Matrix dx = s.backward(dy);
    EXPECT_NEAR(dx.at(0, 0), 0.25, 1e-6);
    EXPECT_NEAR(dx.at(0, 1), 0.0, 1e-6);
}

TEST(Dropout, TrainEvalBehaviour) {
    bg::Rng rng(5);
    Dropout drop(0.5F);
    Matrix x(10, 20);
    x.fill(1.0F);
    const Matrix eval = drop.forward(x, /*train=*/false, rng);
    for (const float v : eval.data()) {
        EXPECT_FLOAT_EQ(v, 1.0F);
    }
    const Matrix train = drop.forward(x, /*train=*/true, rng);
    std::size_t zeros = 0;
    for (const float v : train.data()) {
        if (v == 0.0F) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(v, 2.0F);  // inverted scaling 1/(1-0.5)
        }
    }
    EXPECT_GT(zeros, 50u);
    EXPECT_LT(zeros, 150u);
    // Backward uses the same mask.
    Matrix dy(10, 20);
    dy.fill(1.0F);
    const Matrix dx = drop.backward(dy);
    for (std::size_t i = 0; i < dx.size(); ++i) {
        EXPECT_FLOAT_EQ(dx.data()[i], train.data()[i]);
    }
}

TEST(BatchNorm, NormalizesBatch) {
    bg::Rng rng(6);
    BatchNorm1d bn(4);
    const Matrix x = random_matrix(32, 4, rng, 5.0F);
    const Matrix y = bn.forward(x, /*train=*/true);
    for (std::size_t j = 0; j < 4; ++j) {
        double mean = 0;
        double var = 0;
        for (std::size_t i = 0; i < 32; ++i) {
            mean += y.at(i, j);
        }
        mean /= 32;
        for (std::size_t i = 0; i < 32; ++i) {
            var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
        }
        var /= 32;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(BatchNorm, GradientCheck) {
    bg::Rng rng(7);
    BatchNorm1d bn(3);
    Matrix x = random_matrix(8, 3, rng);

    const auto objective = [&]() {
        BatchNorm1d copy = bn;
        const Matrix y = copy.forward(x, /*train=*/true);
        double s = 0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            s += 0.5 * y.data()[i] * y.data()[i];
        }
        return s;
    };

    bn.zero_grad();
    const Matrix y = bn.forward(x, /*train=*/true);
    const Matrix dx = bn.backward(y);

    auto params = bn.params();
    for (const std::size_t i : {0UL, 1UL, 2UL}) {
        EXPECT_NEAR(params[0].grad[i], numeric_grad(&params[0].value[i],
                                                    objective),
                    5e-2)
            << "gamma " << i;
        EXPECT_NEAR(params[1].grad[i], numeric_grad(&params[1].value[i],
                                                    objective),
                    5e-2)
            << "beta " << i;
    }
    // Input gradient by perturbing an entry of x.
    for (const std::size_t i : {0UL, 5UL, 11UL}) {
        const double num = numeric_grad(&x.data()[i], objective);
        EXPECT_NEAR(dx.data()[i], num, 5e-2) << "input " << i;
    }
}

Csr line_graph(std::size_t n) {
    // 0 - 1 - 2 - ... - (n-1)
    Csr csr;
    csr.offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const int deg = (i == 0 || i + 1 == n) ? 1 : 2;
        csr.offsets[i + 1] = csr.offsets[i] + deg;
    }
    csr.neighbors.resize(static_cast<std::size_t>(csr.offsets[n]));
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0) {
            csr.neighbors[cursor++] = static_cast<std::int32_t>(i - 1);
        }
        if (i + 1 < n) {
            csr.neighbors[cursor++] = static_cast<std::int32_t>(i + 1);
        }
    }
    return csr;
}

TEST(Sage, MeanAggregateCachedInvDegBitIdenticalToFallback) {
    // The precomputed-1/deg fast path must reproduce the on-the-fly
    // division bit for bit, including reuse of a stale output matrix.
    bg::Rng rng(123);
    for (const std::size_t n : {1UL, 3UL, 17UL, 64UL}) {
        Csr plain = line_graph(n);
        Csr cached = plain;
        cached.build_inv_deg();
        ASSERT_EQ(cached.inv_deg.size(), n);
        for (const std::size_t batch : {1UL, 2UL, 5UL}) {
            Matrix x(batch * n, 7);
            for (auto& v : x.data()) {
                v = rng.next_float() * 2.0F - 1.0F;
            }
            Matrix h_plain;
            Matrix h_cached(batch * n, 7);
            h_cached.fill(42.0F);  // stale storage must be overwritten
            mean_aggregate(x, plain, batch, h_plain);
            mean_aggregate(x, cached, batch, h_cached);
            ASSERT_EQ(h_plain.rows(), h_cached.rows());
            for (std::size_t i = 0; i < h_plain.size(); ++i) {
                ASSERT_EQ(h_plain.data()[i], h_cached.data()[i])
                    << "n=" << n << " batch=" << batch << " elt " << i;
            }
        }
    }
}

/// Random graph with a heavy hub (node 0 adjacent to everything): the
/// worst case for edge-balanced sharding — one row carries a large share
/// of the edges and must still land wholly inside one shard.
Csr hub_graph(std::size_t n, bg::Rng& rng) {
    std::vector<std::vector<std::int32_t>> adj(n);
    for (std::size_t i = 1; i < n; ++i) {
        adj[0].push_back(static_cast<std::int32_t>(i));
        adj[i].push_back(0);
    }
    for (std::size_t e = 0; e < 2 * n; ++e) {
        const auto u = rng.next_below(n);
        const auto v = rng.next_below(n);
        adj[u].push_back(static_cast<std::int32_t>(v));
    }
    Csr csr;
    csr.offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        csr.offsets[i + 1] =
            csr.offsets[i] + static_cast<std::int32_t>(adj[i].size());
    }
    for (std::size_t i = 0; i < n; ++i) {
        csr.neighbors.insert(csr.neighbors.end(), adj[i].begin(),
                             adj[i].end());
    }
    csr.build_inv_deg();
    return csr;
}

TEST(Sage, MeanAggregatePooledBitIdenticalToSerial) {
    // The edge-parallel sharding is a pure scheduling change: every row is
    // accumulated wholly by one thread in serial edge order, so the pooled
    // result must equal the serial one bit for bit at any worker count —
    // on hub-skewed graphs (shard boundaries cut next to heavy rows) and
    // above/below the minimum-work threshold alike.
    bg::Rng rng(77);
    for (const std::size_t n : {64UL, 1500UL}) {
        const Csr csr = hub_graph(n, rng);
        for (const std::size_t batch : {1UL, 4UL}) {
            Matrix x(batch * n, 9);
            for (auto& v : x.data()) {
                v = rng.next_float() * 2.0F - 1.0F;
            }
            Matrix h_serial;
            mean_aggregate(x, csr, batch, h_serial, nullptr);
            for (const std::size_t workers : {1UL, 2UL, 3UL, 8UL}) {
                bg::ThreadPool pool(workers);
                Matrix h_pooled(batch * n, 9);
                h_pooled.fill(42.0F);  // stale storage must be overwritten
                mean_aggregate(x, csr, batch, h_pooled, &pool);
                ASSERT_EQ(h_pooled.rows(), h_serial.rows());
                for (std::size_t i = 0; i < h_serial.size(); ++i) {
                    ASSERT_EQ(h_serial.data()[i], h_pooled.data()[i])
                        << "n=" << n << " batch=" << batch
                        << " workers=" << workers << " elt " << i;
                }
            }
        }
    }
}

TEST(Sage, MeanAggregateZeroesIsolatedNodes) {
    // Node 1 is isolated; its output row must be zero even when the
    // output matrix is reused with stale contents.
    Csr csr;
    csr.offsets = {0, 1, 1, 2};
    csr.neighbors = {2, 0};
    csr.build_inv_deg();
    EXPECT_EQ(csr.inv_deg[1], 0.0F);
    Matrix x(3, 2);
    x.at(0, 0) = 4.0F;
    x.at(2, 0) = 8.0F;
    Matrix h(3, 2);
    h.fill(9.0F);
    mean_aggregate(x, csr, 1, h);
    EXPECT_FLOAT_EQ(h.at(0, 0), 8.0F);
    EXPECT_FLOAT_EQ(h.at(1, 0), 0.0F);
    EXPECT_FLOAT_EQ(h.at(1, 1), 0.0F);
    EXPECT_FLOAT_EQ(h.at(2, 0), 4.0F);
}

TEST(Sage, MeanAggregationSemantics) {
    const Csr csr = line_graph(3);
    Matrix x(3, 2);
    x.at(0, 0) = 1.0F;
    x.at(1, 0) = 2.0F;
    x.at(2, 0) = 4.0F;
    Matrix h;
    mean_aggregate(x, csr, 1, h);
    EXPECT_FLOAT_EQ(h.at(0, 0), 2.0F);           // neighbor {1}
    EXPECT_FLOAT_EQ(h.at(1, 0), (1.0F + 4.0F) / 2.0F);
    EXPECT_FLOAT_EQ(h.at(2, 0), 2.0F);
}

TEST(Sage, BatchBlocksAreIndependent) {
    const Csr csr = line_graph(3);
    Matrix x(6, 1);
    for (std::size_t i = 0; i < 6; ++i) {
        x.at(i, 0) = static_cast<float>(i);
    }
    Matrix h;
    mean_aggregate(x, csr, 2, h);
    // Second block must aggregate rows 3..5 only.
    EXPECT_FLOAT_EQ(h.at(3, 0), 4.0F);
    EXPECT_FLOAT_EQ(h.at(5, 0), 4.0F);
}

TEST(Sage, GradientCheck) {
    bg::Rng rng(8);
    const Csr csr = line_graph(4);
    SageConv conv(3, 2, rng);
    Matrix x = random_matrix(8, 3, rng);  // batch of 2

    const auto objective = [&]() {
        SageConv copy = conv;
        const Matrix y = copy.forward(x, csr, 2);
        double s = 0;
        for (const float v : y.data()) {
            s += 0.5 * v * v;
        }
        return s;
    };

    conv.zero_grad();
    const Matrix y = conv.forward(x, csr, 2);
    const Matrix dx = conv.backward(y);

    auto params = conv.params();
    for (std::size_t p = 0; p < params.size(); ++p) {
        for (std::size_t i = 0; i < std::min<std::size_t>(params[p].size, 4);
             ++i) {
            const double num = numeric_grad(&params[p].value[i], objective);
            EXPECT_NEAR(params[p].grad[i], num, 5e-2)
                << "param " << p << " index " << i;
        }
    }
    for (const std::size_t i : {0UL, 7UL, 15UL, 23UL}) {
        const double num = numeric_grad(&x.data()[i], objective);
        EXPECT_NEAR(dx.data()[i], num, 5e-2) << "input " << i;
    }
}

TEST(MeanPool, ForwardBackward) {
    Matrix x(4, 2);  // 2 samples x 2 nodes
    x.at(0, 0) = 1.0F;
    x.at(1, 0) = 3.0F;
    x.at(2, 0) = 5.0F;
    x.at(3, 0) = 7.0F;
    Matrix pooled;
    mean_pool(x, 2, pooled);
    EXPECT_FLOAT_EQ(pooled.at(0, 0), 2.0F);
    EXPECT_FLOAT_EQ(pooled.at(1, 0), 6.0F);
    Matrix dp(2, 2);
    dp.fill(1.0F);
    Matrix dx;
    mean_pool_backward(dp, 2, dx);
    EXPECT_FLOAT_EQ(dx.at(0, 0), 0.5F);
    EXPECT_FLOAT_EQ(dx.at(3, 0), 0.5F);
}

TEST(Loss, MseValueAndGrad) {
    Matrix pred(2, 1);
    pred.at(0, 0) = 0.5F;
    pred.at(1, 0) = 0.0F;
    const std::vector<float> target{1.0F, 0.0F};
    const auto res = mse_loss(pred, target);
    EXPECT_NEAR(res.loss, 0.125, 1e-6);
    EXPECT_NEAR(res.grad.at(0, 0), 2.0 * (-0.5) / 2.0, 1e-6);
    EXPECT_NEAR(res.grad.at(1, 0), 0.0, 1e-6);
    EXPECT_NEAR(mse_value(pred, target), 0.125, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
    // Minimize (x - 3)^2 with Adam.
    float x = 0.0F;
    float g = 0.0F;
    Adam opt({{&x, &g, 1}}, 0.1);
    for (int i = 0; i < 500; ++i) {
        g = 2.0F * (x - 3.0F);
        opt.step();
    }
    EXPECT_NEAR(x, 3.0F, 1e-2);
}

TEST(Adam, StepDecaySchedule) {
    const StepDecay decay{1e-3, 0.5, 100};
    EXPECT_DOUBLE_EQ(decay.at_epoch(0), 1e-3);
    EXPECT_DOUBLE_EQ(decay.at_epoch(99), 1e-3);
    EXPECT_DOUBLE_EQ(decay.at_epoch(100), 5e-4);
    EXPECT_DOUBLE_EQ(decay.at_epoch(250), 2.5e-4);
}

TEST(Training, TinyRegressionLearns) {
    // End-to-end sanity: a 2-layer dense net fits y = mean(x) on random
    // data far better than the initial weights do.
    bg::Rng rng(9);
    Linear l1(4, 8, rng);
    ReLU6 a1;
    Linear l2(8, 1, rng);

    std::vector<ParamRef> params;
    for (const auto& p : l1.params()) {
        params.push_back(p);
    }
    for (const auto& p : l2.params()) {
        params.push_back(p);
    }
    Adam opt(params, 5e-3);

    const auto make_batch = [&](Matrix& x, std::vector<float>& t) {
        x = random_matrix(16, 4, rng);
        t.resize(16);
        for (std::size_t i = 0; i < 16; ++i) {
            float m = 0;
            for (std::size_t j = 0; j < 4; ++j) {
                m += x.at(i, j);
            }
            t[i] = m / 4.0F;
        }
    };

    double first_loss = -1;
    double last_loss = 0;
    for (int iter = 0; iter < 400; ++iter) {
        Matrix x;
        std::vector<float> t;
        make_batch(x, t);
        l1.zero_grad();
        l2.zero_grad();
        const Matrix y = l2.forward(a1.forward(l1.forward(x)));
        const auto loss = mse_loss(y, t);
        l1.backward(a1.backward(l2.backward(loss.grad)));
        opt.step();
        if (first_loss < 0) {
            first_loss = loss.loss;
        }
        last_loss = loss.loss;
    }
    EXPECT_LT(last_loss, first_loss * 0.2)
        << "training failed to reduce the loss";
}

}  // namespace
