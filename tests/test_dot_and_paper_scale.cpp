#include <gtest/gtest.h>

#include <cmath>

#include "circuits/registry.hpp"
#include "core/dataset.hpp"
#include "core/model.hpp"
#include "core/sampling.hpp"
#include "core/trainer.hpp"
#include "io/dot.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity

TEST(Dot, RendersAllElements) {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    const Lit x = g.and_(lit_not(a), b);
    g.add_po(lit_not(x));
    g.add_po(lit_false);
    const auto dot = bg::io::write_dot_string(g);
    EXPECT_NE(dot.find("digraph aig"), std::string::npos);
    EXPECT_NE(dot.find("shape=box"), std::string::npos);        // PIs
    EXPECT_NE(dot.find("shape=circle"), std::string::npos);     // AND
    EXPECT_NE(dot.find("shape=invtriangle"), std::string::npos);  // POs
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // complements
    EXPECT_NE(dot.find("const0"), std::string::npos);
    // Two fanin edges + two PO edges.
    std::size_t arrows = 0;
    for (std::size_t p = dot.find("->"); p != std::string::npos;
         p = dot.find("->", p + 1)) {
        ++arrows;
    }
    EXPECT_EQ(arrows, 4u);
}

TEST(Dot, FileRoundTrip) {
    const Aig g = bg::circuits::make_benchmark_scaled("b10", 0.3);
    const auto path = std::filesystem::temp_directory_path() / "bg_test.dot";
    bg::io::write_dot_file(g, path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_GT(std::filesystem::file_size(path), 100u);
    std::filesystem::remove(path);
}

TEST(PaperScale, FullWidthModelTrainsOneEpoch) {
    // The --full path uses the paper's 512-wide GraphSAGE and 1000-200-1
    // head; run two epochs on a small design to prove the configuration
    // is structurally sound (full training is hours, exercised by the
    // bench harnesses under BOOLGEBRA_FULL=1).
    const Aig design = bg::circuits::make_benchmark_scaled("b10", 0.3);
    const auto records = bg::core::generate_guided_samples(design, 12, 1);
    const auto ds = bg::core::build_dataset(design, records);

    bg::core::BoolGebraModel model(bg::core::ModelConfig::paper());
    EXPECT_GT(model.num_parameters(), 500000u)
        << "paper model should have ~0.6M+ parameters";
    auto tc = bg::core::TrainConfig::paper();
    tc.epochs = 2;
    tc.batch_size = 6;
    tc.eval_every = 1;
    const auto result = bg::core::train_model(model, ds, tc);
    ASSERT_EQ(result.history.size(), 2u);
    EXPECT_DOUBLE_EQ(result.history[0].lr, 8e-7);
    // Finite losses prove the wide path computes sane numbers.
    EXPECT_TRUE(std::isfinite(result.final_test_loss));
    EXPECT_TRUE(std::isfinite(result.final_train_loss));
}

}  // namespace
