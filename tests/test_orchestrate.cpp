#include <gtest/gtest.h>

#include <filesystem>

#include "aig/cec.hpp"
#include "opt/orchestrate.hpp"
#include "opt/standalone.hpp"
#include "test_helpers.hpp"
#include "util/csv.hpp"

namespace {

using namespace bg::aig;  // NOLINT: test brevity
using bg::opt::DecisionVector;
using bg::opt::OpKind;
using bg::opt::orchestrate;
using bg::opt::standalone_pass;
using bg::opt::uniform_decisions;

TEST(Orchestrate, AllNoneIsIdentity) {
    auto g = bg::test::redundant_aig(7, 25, 3, 5);
    const auto before = g.num_ands();
    const auto res = orchestrate(g, uniform_decisions(g, OpKind::None));
    EXPECT_EQ(res.num_checked, 0u);
    EXPECT_EQ(res.num_applied, 0u);
    EXPECT_EQ(g.num_ands(), before);
    EXPECT_EQ(res.reduction(), 0);
}

TEST(Orchestrate, UniformRewriteEqualsStandalone) {
    auto g1 = bg::test::redundant_aig(7, 30, 3, 8);
    auto g2 = g1;
    const auto r1 = orchestrate(g1, uniform_decisions(g1, OpKind::Rewrite));
    const auto r2 = standalone_pass(g2, OpKind::Rewrite);
    EXPECT_EQ(r1.final_size, r2.final_size);
    EXPECT_EQ(r1.num_applied, r2.num_applied);
}

TEST(Orchestrate, ReportsAppliedOps) {
    Aig g;
    const Lit c = g.add_pi();
    const Lit a = g.add_pi();
    const Lit t0 = g.and_(c, a);
    const Lit t1 = g.and_(lit_not(c), a);
    const Lit f = g.or_(t0, t1);
    g.add_po(f);
    DecisionVector d(g.num_slots(), OpKind::None);
    d[lit_var(f)] = OpKind::Rewrite;
    const auto res = orchestrate(g, d);
    EXPECT_EQ(res.num_checked, 1u);
    EXPECT_EQ(res.num_applied, 1u);
    EXPECT_EQ(res.applied[lit_var(f)], OpKind::Rewrite);
    EXPECT_EQ(res.applied[lit_var(t0)], OpKind::None);
    EXPECT_EQ(res.reduction(), 3);
}

TEST(Orchestrate, ConsumedNodesAreSkipped) {
    // When a node's MFFC disappears, later decisions on its interior nodes
    // must be skipped (the paper: excluded from subsequent iterations).
    Aig g;
    const Lit c = g.add_pi();
    const Lit a = g.add_pi();
    const Lit t0 = g.and_(c, a);
    const Lit t1 = g.and_(lit_not(c), a);
    const Lit f = g.or_(t0, t1);
    // Extra fanout above f so f is not a root.
    const Lit top = g.and_(f, g.add_pi());
    g.add_po(top);
    DecisionVector d(g.num_slots(), OpKind::Rewrite);
    const auto res = orchestrate(g, d);
    // Everything still works and the function is intact.
    g.check_integrity();
    EXPECT_LE(g.num_ands(), 2u);
    EXPECT_GT(res.num_applied, 0u);
}

TEST(Orchestrate, DecisionVectorTooShortThrows) {
    auto g = bg::test::random_aig(4, 10, 1, 1);
    DecisionVector d(3, OpKind::Rewrite);
    EXPECT_THROW((void)orchestrate(g, d), bg::ContractViolation);
}

TEST(Orchestrate, MixedDecisionsPreserveFunction) {
    // The central Algorithm-1 property: ANY decision vector keeps the
    // network functionally intact.
    bg::Rng rng(97);
    for (int round = 0; round < 12; ++round) {
        auto g = bg::test::redundant_aig(8, 35, 4,
                                         1000 + static_cast<std::uint64_t>(round));
        const Aig original = g;
        DecisionVector d(g.num_slots(), OpKind::None);
        for (auto& op : d) {
            op = bg::opt::op_from_index(static_cast<int>(rng.next_below(3)));
        }
        const auto res = orchestrate(g, d);
        g.check_integrity();
        EXPECT_EQ(check_equivalence(original, g), CecVerdict::Equivalent)
            << "round " << round;
        EXPECT_EQ(res.final_size, g.num_ands());
        EXPECT_LE(res.final_size, res.original_size);
    }
}

TEST(Orchestrate, OrchestrationCanBeatStandalone) {
    // The paper's Fig 1 claim: some mixed assignment beats each
    // stand-alone pass on at least one of a family of redundant graphs.
    bg::Rng rng(123);
    bool orchestration_won = false;
    for (std::uint64_t seed = 1; seed <= 6 && !orchestration_won; ++seed) {
        const auto base = bg::test::redundant_aig(8, 40, 4, seed);
        std::size_t best_standalone = SIZE_MAX;
        for (const OpKind op :
             {OpKind::Rewrite, OpKind::Resub, OpKind::Refactor}) {
            auto g = base;
            (void)standalone_pass(g, op);
            best_standalone = std::min(best_standalone, g.num_ands());
        }
        for (int trial = 0; trial < 40; ++trial) {
            auto g = base;
            DecisionVector d(g.num_slots(), OpKind::None);
            for (auto& op : d) {
                op = bg::opt::op_from_index(
                    static_cast<int>(rng.next_below(3)));
            }
            (void)orchestrate(g, d);
            if (g.num_ands() < best_standalone) {
                orchestration_won = true;
                break;
            }
        }
    }
    EXPECT_TRUE(orchestration_won)
        << "random orchestration never beat stand-alone passes";
}

TEST(Standalone, ConvergenceMonotone) {
    auto g = bg::test::redundant_aig(8, 40, 4, 77);
    const auto before = g.num_ands();
    const int total = bg::opt::standalone_to_convergence(g, OpKind::Rewrite);
    EXPECT_EQ(static_cast<int>(before) - static_cast<int>(g.num_ands()),
              total);
    // One more pass finds nothing.
    auto res = standalone_pass(g, OpKind::Rewrite);
    EXPECT_EQ(res.reduction(), 0);
}

TEST(DecisionsCsv, RoundTrip) {
    DecisionVector d{OpKind::Rewrite, OpKind::None, OpKind::Resub,
                     OpKind::Refactor, OpKind::Rewrite};
    const auto path =
        std::filesystem::temp_directory_path() / "bg_decisions_test.csv";
    bg::opt::save_decisions_csv(path, d);
    const auto loaded = bg::opt::load_decisions_csv(path);
    EXPECT_EQ(loaded, d);
    std::filesystem::remove(path);
}

TEST(DecisionsCsv, PaperEncodingInFile) {
    DecisionVector d{OpKind::Rewrite, OpKind::Resub, OpKind::Refactor};
    const auto path =
        std::filesystem::temp_directory_path() / "bg_decisions_enc.csv";
    bg::opt::save_decisions_csv(path, d);
    const auto table = bg::load_csv(path, true);
    ASSERT_EQ(table.rows.size(), 3u);
    EXPECT_EQ(table.rows[0][1], "0");  // rw
    EXPECT_EQ(table.rows[1][1], "1");  // rs
    EXPECT_EQ(table.rows[2][1], "2");  // rf
    std::filesystem::remove(path);
}

}  // namespace
